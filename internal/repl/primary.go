package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"ariesrh/internal/core"
	"ariesrh/internal/obs"
	"ariesrh/internal/wal"
)

// ErrPrimaryClosed is returned by Serve after Close has detached the
// primary-side replication state.
var ErrPrimaryClosed = errors.New("repl: primary closed")

// defaultBatch bounds how many records one records message carries.
const defaultBatch = 256

// Primary is the sending side of replication for one attached replica.
// It owns a long-lived retention pin on the engine's log — taken at
// attach time, advanced only by the replica's durability acks — so
// wal.Archive never discards a record the replica still needs, across
// arbitrarily many disconnect/reconnect cycles.  Serve handles one
// connection at a time; a replica that lost its connection reconnects and
// resumes from its own log head (the LSN cursor in its hello).
//
// Attach the primary BEFORE taking the bootstrap backup: the pin starts
// at the head as of attach, so everything a later backup misses is
// guaranteed to still be in the log when the replica first connects.
type Primary struct {
	eng *core.Engine

	mu       sync.Mutex
	pin      *wal.Subscription // retention pin; never used for delivery
	active   *wal.Subscription // current connection's delivery cursor
	closed   bool
	inflight []batchMark
	// Cumulative payload bytes shipped/acknowledged; their difference is
	// the repl.lag_bytes gauge.
	shippedBytes, ackedBytes uint64

	met primaryMetrics
}

// batchMark remembers one sent records batch so its covering ack can be
// timed and its bytes subtracted from the lag.
type batchMark struct {
	last     wal.LSN
	cumBytes uint64
	sent     time.Time
}

type primaryMetrics struct {
	shippedRecords, shippedBytes, connects *obs.Counter
	lagRecords, lagBytes                   *obs.Gauge
	ackLagNs                               *obs.Histogram
}

// NewPrimary attaches replication to eng: the retention pin is taken at
// the current log head and the replication metrics are bound to the
// engine's registry (so DB.Metrics() reports lag and shipped volume).
func NewPrimary(eng *core.Engine) (*Primary, error) {
	pin, err := eng.Log().Subscribe(eng.Log().Head() + 1)
	if err != nil {
		return nil, err
	}
	reg := eng.Registry()
	return &Primary{
		eng: eng,
		pin: pin,
		met: primaryMetrics{
			shippedRecords: reg.Counter("repl.shipped_records"),
			shippedBytes:   reg.Counter("repl.shipped_bytes"),
			connects:       reg.Counter("repl.connects"),
			lagRecords:     reg.Gauge("repl.lag_records"),
			lagBytes:       reg.Gauge("repl.lag_bytes"),
			ackLagNs:       reg.Histogram("repl.ack_lag_ns"),
		},
	}, nil
}

// AckedLSN returns the highest LSN the replica has acknowledged as
// durable (NilLSN before the first ack).
func (p *Primary) AckedLSN() wal.LSN {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pin := p.pin.Pin(); pin != wal.NilLSN {
		return pin - 1
	}
	return wal.NilLSN
}

// Serve speaks the protocol over one connection: it reads the replica's
// hello, opens a delivery cursor at the requested LSN, then ships durable
// records and consumes acks until the connection fails, the replica
// hangs up, or Close is called.  If rw is an io.Closer it is closed on
// the way out, releasing whichever loop is still blocked on it.  The
// retention pin survives Serve returning; call Close to detach for good.
func (p *Primary) Serve(rw io.ReadWriter) error {
	kind, payload, err := readMsg(rw)
	if err != nil {
		return err
	}
	if kind != msgHello || len(payload) != 8 {
		return fmt.Errorf("repl: expected hello, got message kind %d (%d bytes)", kind, len(payload))
	}
	from := wal.LSN(binary.LittleEndian.Uint64(payload))

	sub, err := p.eng.Log().Subscribe(from)
	if err != nil {
		code := byte(errCodeGeneric)
		if errors.Is(err, wal.ErrArchived) {
			// The replica's cursor fell behind the archived base — it can
			// only be rebuilt from a fresh backup.
			code = errCodeSnapshotNeeded
		}
		_ = writeMsg(rw, msgError, append([]byte{code}, err.Error()...))
		return err
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		sub.Close()
		return ErrPrimaryClosed
	}
	p.active = sub
	p.inflight = nil
	p.ackedBytes = p.shippedBytes // re-shipped records don't inflate the byte lag
	p.mu.Unlock()
	p.met.connects.Inc()

	errc := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); errc <- p.sendLoop(rw, sub) }()
	go func() { defer wg.Done(); errc <- p.ackLoop(rw, sub) }()
	err = <-errc
	sub.Close() // unblocks a sendLoop waiting in Next
	if c, ok := rw.(io.Closer); ok {
		c.Close() // unblocks an ackLoop waiting in Read
	}
	wg.Wait()

	p.mu.Lock()
	if p.active == sub {
		p.active = nil
	}
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return ErrPrimaryClosed
	}
	return err
}

// sendLoop ships durable records as the subscription delivers them.
func (p *Primary) sendLoop(w io.Writer, sub *wal.Subscription) error {
	for {
		recs, err := sub.Next(defaultBatch)
		if err != nil {
			return err
		}
		payload := make([]byte, 8, 8+64*len(recs))
		binary.LittleEndian.PutUint64(payload, uint64(p.eng.Log().FlushedLSN()))
		for _, r := range recs {
			enc, err := wal.EncodeRecord(r)
			if err != nil {
				return err
			}
			payload = append(payload, enc...)
		}
		if err := writeMsg(w, msgRecords, payload); err != nil {
			return err
		}
		n := uint64(len(payload) - 8)
		p.met.shippedRecords.Add(uint64(len(recs)))
		p.met.shippedBytes.Add(n)
		p.mu.Lock()
		p.shippedBytes += n
		p.inflight = append(p.inflight, batchMark{
			last:     recs[len(recs)-1].LSN,
			cumBytes: p.shippedBytes,
			sent:     time.Now(),
		})
		p.mu.Unlock()
	}
}

// ackLoop consumes durability acks, advancing the retention pin and the
// lag accounting.
func (p *Primary) ackLoop(r io.Reader, sub *wal.Subscription) error {
	for {
		kind, payload, err := readMsg(r)
		if err != nil {
			return err
		}
		if kind != msgAck || len(payload) != 8 {
			return fmt.Errorf("repl: unexpected message kind %d from replica", kind)
		}
		acked := wal.LSN(binary.LittleEndian.Uint64(payload))
		sub.Ack(acked)

		now := time.Now()
		p.mu.Lock()
		p.pin.Ack(acked)
		for len(p.inflight) > 0 && p.inflight[0].last <= acked {
			m := p.inflight[0]
			p.inflight = p.inflight[1:]
			p.ackedBytes = m.cumBytes
			p.met.ackLagNs.Observe(now.Sub(m.sent))
		}
		lagBytes := p.shippedBytes - p.ackedBytes
		p.mu.Unlock()

		lagRecords := int64(0)
		if flushed := p.eng.Log().FlushedLSN(); flushed > acked {
			lagRecords = int64(flushed - acked)
		}
		p.met.lagRecords.Set(lagRecords)
		p.met.lagBytes.Set(int64(lagBytes))
	}
}

// Close detaches the replica: the retention pin is released (Archive may
// reclaim everything durable) and any active Serve returns
// ErrPrimaryClosed.  Close is idempotent.
func (p *Primary) Close() {
	p.mu.Lock()
	active := p.active
	p.active = nil
	p.closed = true
	p.pin.Close()
	p.mu.Unlock()
	if active != nil {
		active.Close()
	}
}
