// Package repl implements log-shipping replication for the ARIES/RH
// engine: a Primary tails its own write-ahead log through a
// wal.Subscription and streams the durable records to a Replica, which
// runs a follower-mode engine — recovery's forward pass, continuously —
// and acknowledges records as they become durable locally.  Promotion is
// the engine's existing backward pass (core.Engine.Promote); this package
// only moves bytes.
//
// The wire protocol is four message kinds over any io.ReadWriter (an
// in-process pipe in tests, a TCP connection in cmd/rhstandby):
//
//	hello    replica → primary   u64: first LSN the replica wants
//	records  primary → replica   u64: primary's flushed LSN, then one or
//	                             more encoded record frames (wal.EncodeRecord)
//	ack      replica → primary   u64: LSN through which the replica's log
//	                             is durable; releases the retention pin
//	error    primary → replica   u8 code, utf-8 detail
//
// Every message is framed as `u8 kind | u32 payload length | payload`,
// little-endian.  Record frames are self-delimiting (length + checksum
// header), so the records payload is their plain concatenation.
package repl

import (
	"encoding/binary"
	"fmt"
	"io"

	"ariesrh/internal/wal"
)

const (
	msgHello   = 1
	msgRecords = 2
	msgAck     = 3
	msgError   = 4
)

// Error codes carried by msgError.
const (
	errCodeGeneric        = 0
	errCodeSnapshotNeeded = 1 // the requested LSN is archived; bootstrap from a backup
)

// maxMsgLen bounds a single message; a frame claiming more is treated as
// stream corruption rather than a huge allocation.
const maxMsgLen = 64 << 20

const frameHeader = 5 // u8 kind + u32 length

// writeMsg frames and writes one message in a single Write call.
func writeMsg(w io.Writer, kind byte, payload []byte) error {
	buf := make([]byte, frameHeader+len(payload))
	buf[0] = kind
	binary.LittleEndian.PutUint32(buf[1:], uint32(len(payload)))
	copy(buf[frameHeader:], payload)
	_, err := w.Write(buf)
	return err
}

// readMsg reads one framed message.
func readMsg(r io.Reader) (byte, []byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxMsgLen {
		return 0, nil, fmt.Errorf("repl: message of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// writeLSNMsg writes a message whose whole payload is one LSN.
func writeLSNMsg(w io.Writer, kind byte, lsn wal.LSN) error {
	var payload [8]byte
	binary.LittleEndian.PutUint64(payload[:], uint64(lsn))
	return writeMsg(w, kind, payload[:])
}

// decodeRecords splits a records payload back into records.
func decodeRecords(p []byte) ([]*wal.Record, error) {
	var recs []*wal.Record
	for len(p) > 0 {
		rec, n, err := wal.DecodeRecord(p)
		if err != nil {
			return nil, fmt.Errorf("repl: corrupt record frame: %w", err)
		}
		recs = append(recs, rec)
		p = p[n:]
	}
	return recs, nil
}
