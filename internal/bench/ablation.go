package bench

import (
	"fmt"
	"time"

	"ariesrh/internal/core"
	"ariesrh/internal/sim"
)

// A1ClusterSweepAblation isolates the paper's central backward-pass design
// choice (§3.6.2): sweeping clusters of overlapping loser scopes versus
// the rejected alternative of scanning every log record backwards.  The
// same engine runs both ways (Options.FullScanUndo) on identical
// histories, so the delta is purely the sweep strategy.
func A1ClusterSweepAblation(steps int, rates []float64) (*Table, error) {
	t := &Table{
		ID:      "A1",
		Title:   fmt.Sprintf("ablation: cluster sweep vs full backward scan (%d-step histories)", steps),
		Claim:   "§3.6.2: 'Within each cluster we must examine every log record, but between clusters we examine none' — vs 'scan all log records backwards … unnecessarily inspecting many winner updates'",
		Headers: []string{"deleg rate", "undo strategy", "recovery ms", "bwd visited", "CLRs"},
	}
	for _, rate := range rates {
		cfg := sim.Config{
			Seed:           7,
			Steps:          steps,
			Objects:        steps / 8,
			MaxActive:      8,
			DelegationRate: rate,
			TerminateRate:  0.10,
			AbortFraction:  0.3,
		}
		trace := sim.Generate(cfg)
		for _, fullScan := range []bool{false, true} {
			e, err := core.New(core.Options{PoolSize: 256, FullScanUndo: fullScan})
			if err != nil {
				return nil, err
			}
			rep := sim.NewReplayer(sim.CoreTarget{Engine: e}, trace)
			if err := rep.RunTo(-1); err != nil {
				return nil, err
			}
			s0 := e.Stats()
			start := time.Now()
			if err := rep.CrashRecover(); err != nil {
				return nil, err
			}
			d := time.Since(start)
			s1 := e.Stats()
			name := "cluster sweep"
			if fullScan {
				name = "full scan"
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.2f", rate),
				name,
				fmt.Sprintf("%.3f", float64(d.Microseconds())/1000),
				fmt.Sprint(s1.RecBackwardVisited - s0.RecBackwardVisited),
				fmt.Sprint(s1.RecCLRs - s0.RecCLRs),
			})
		}
	}
	t.Verdict = "identical CLRs (same undo work) but the full scan visits orders of magnitude more records; the cluster sweep is the reason delegation-aware undo stays ARIES-priced"
	return t, nil
}
