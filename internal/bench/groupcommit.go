package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ariesrh/internal/core"
	"ariesrh/internal/wal"
)

// syncDelayDir wraps an in-memory wal directory, counting device Sync
// calls across all its devices and charging each one a fixed latency.
// MemDir's syncs are free, which would hide exactly what group commit
// buys: without a sync cost, N serialized syncs and 1 coalesced sync
// take the same time.  The delay models a commodity device (an NVMe
// flush is tens of µs, a SATA disk milliseconds).
type syncDelayDir struct {
	inner *wal.MemDir
	delay time.Duration
	syncs atomic.Uint64

	mu   sync.Mutex
	open map[string]wal.Store
}

func newSyncDelayDir(delay time.Duration) *syncDelayDir {
	return &syncDelayDir{inner: wal.NewMemDir(), delay: delay, open: make(map[string]wal.Store)}
}

// Open caches the wrapper per name so repeated opens observe one device,
// as the wal.Dir contract requires.
func (d *syncDelayDir) Open(name string) (wal.Store, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.open[name]; ok {
		return s, nil
	}
	inner, err := d.inner.Open(name)
	if err != nil {
		return nil, err
	}
	s := &syncDelayStore{Store: inner, dir: d}
	d.open[name] = s
	return s, nil
}

func (d *syncDelayDir) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.open, name)
	return d.inner.Remove(name)
}

func (d *syncDelayDir) List() ([]string, error) { return d.inner.List() }
func (d *syncDelayDir) Close() error            { return d.inner.Close() }

// syncDelayStore is one device of a syncDelayDir.
type syncDelayStore struct {
	wal.Store
	dir *syncDelayDir
}

func (s *syncDelayStore) Sync() error {
	s.dir.syncs.Add(1)
	if s.dir.delay > 0 {
		time.Sleep(s.dir.delay)
	}
	return s.Store.Sync()
}

// e8Row is one E8 measurement cell.
type e8Row struct {
	committers int
	mode       string
	commits    uint64
	syncs      uint64
	waiters    uint64
	grouped    uint64
	elapsed    time.Duration
}

// runE8Cell runs committers goroutines, each performing txnsPer
// transactions of updatesPer updates on disjoint object ranges, against a
// fresh engine whose log sits on a syncDelayStore.
func runE8Cell(committers, txnsPer, updatesPer int, syncDelay time.Duration, mode core.GroupCommitMode) (e8Row, error) {
	store := newSyncDelayDir(syncDelay)
	eng, err := core.New(core.Options{PoolSize: 4096, LogDir: store, GroupCommit: mode})
	if err != nil {
		return e8Row{}, err
	}
	syncs0 := store.syncs.Load()
	stats0 := eng.LogStats()
	val := []byte("group-commit-payload-0123456789")

	var wg sync.WaitGroup
	errs := make(chan error, committers)
	start := time.Now()
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns a private object range (no lock
			// conflicts) and cycles within it to bound the page count.
			base := wal.ObjectID(1 + w*1024)
			for i := 0; i < txnsPer; i++ {
				tx, err := eng.Begin()
				if err != nil {
					errs <- err
					return
				}
				for j := 0; j < updatesPer; j++ {
					obj := base + wal.ObjectID((i*updatesPer+j)%512)
					if err := eng.Update(tx, obj, val); err != nil {
						errs <- err
						return
					}
				}
				if err := eng.Commit(tx); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return e8Row{}, err
		}
	}

	d := eng.LogStats().Sub(stats0)
	modeName := "on"
	if mode == core.GroupCommitOff {
		modeName = "off"
	}
	return e8Row{
		committers: committers,
		mode:       modeName,
		commits:    uint64(committers * txnsPer),
		syncs:      store.syncs.Load() - syncs0,
		waiters:    d.FlushWaiters,
		grouped:    d.GroupedFlushes,
		elapsed:    elapsed,
	}, nil
}

// E8GroupCommit measures commit throughput and device syncs per commit as
// the number of concurrent committers grows, with group commit on vs off.
// With group commit off, every commit forces the log under the engine
// latch: syncs/commit stays at ~1 and committers serialize behind the
// device.  With group commit on, one leader sync covers every commit
// record queued meanwhile, so syncs/commit falls toward 1/batch and
// throughput scales with the committer count instead of the sync latency.
func E8GroupCommit(committerCounts []int, txnsPer, updatesPer int, syncDelay time.Duration) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "group commit: device syncs per commit vs concurrent committers",
		Claim: "coalescing commit-time log forces makes N committers pay ~1 device sync per batch instead of N, without holding the engine latch across the sync",
		Headers: []string{"committers", "group", "commits", "dev-syncs", "syncs/commit",
			"waiters", "grouped", "coalesce", "commits/s", "us/commit"},
	}
	// syncsPerCommit[i] tracks the group-on trajectory for the verdict.
	var onSyncsPerCommit []float64
	var coalesceAt8 float64
	for _, n := range committerCounts {
		for _, mode := range []core.GroupCommitMode{core.GroupCommitOn, core.GroupCommitOff} {
			row, err := runE8Cell(n, txnsPer, updatesPer, syncDelay, mode)
			if err != nil {
				return nil, err
			}
			spc := float64(row.syncs) / float64(row.commits)
			coalesce := "-"
			if row.grouped > 0 {
				r := float64(row.waiters) / float64(row.grouped)
				coalesce = fmt.Sprintf("%.2f", r)
				if mode == core.GroupCommitOn && n >= 8 && coalesceAt8 == 0 {
					coalesceAt8 = r
				}
			}
			if mode == core.GroupCommitOn {
				onSyncsPerCommit = append(onSyncsPerCommit, spc)
			}
			perCommit := row.elapsed / time.Duration(row.commits)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", row.committers),
				row.mode,
				fmt.Sprintf("%d", row.commits),
				fmt.Sprintf("%d", row.syncs),
				fmt.Sprintf("%.3f", spc),
				fmt.Sprintf("%d", row.waiters),
				fmt.Sprintf("%d", row.grouped),
				coalesce,
				fmt.Sprintf("%.0f", float64(row.commits)/row.elapsed.Seconds()),
				fmt.Sprintf("%.1f", float64(perCommit.Nanoseconds())/1e3),
			})
		}
	}
	decreasing := true
	for i := 1; i < len(onSyncsPerCommit); i++ {
		if onSyncsPerCommit[i] >= onSyncsPerCommit[i-1] {
			decreasing = false
			break
		}
	}
	switch {
	case decreasing && coalesceAt8 > 1:
		t.Verdict = fmt.Sprintf("HOLDS: syncs/commit strictly decreasing with committers (%.3f -> %.3f); coalescing ratio %.2f at >=8 committers",
			onSyncsPerCommit[0], onSyncsPerCommit[len(onSyncsPerCommit)-1], coalesceAt8)
	case decreasing:
		t.Verdict = "PARTIAL: syncs/commit decreasing, but coalescing ratio did not exceed 1 at >=8 committers"
	default:
		t.Verdict = "FAILS: syncs/commit not strictly decreasing with committer count"
	}
	return t, nil
}
