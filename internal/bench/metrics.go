package bench

import (
	"fmt"

	"ariesrh/internal/core"
	"ariesrh/internal/obs"
	"ariesrh/internal/wal"
)

// E9MetricsInvariants re-measures the paper's §4.2 claims in the units the
// internal/obs registry counts, as a table of invariant / measured /
// expected rows.  It is the experiment-harness twin of the Claim tests in
// internal/core: the same three invariants, but over the sizes rhbench
// uses, with the full metrics snapshot available to EXPERIMENTS.md.
//
// C1: on a delegation-free workload ARIES/RH appends exactly the records
// plain ARIES appends and recovery reads/redoes/compensates the same
// counts.  C2: delegating n objects appends exactly n records and forces
// zero device flushes, regardless of how many updates each object
// carries.  C3: the backward pass of recovery visits each log record at
// most once, at strictly decreasing LSNs.
func E9MetricsInvariants(txns, updates, delegObjects int) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   fmt.Sprintf("metric invariants for C1–C3 (%d txns x %d updates, %d delegated objects)", txns, updates, delegObjects),
		Claim:   "§4.2: C1 no delegation no overhead; C2 delegation cost linear in objects; C3 single monotone undo sweep",
		Headers: []string{"invariant", "measured", "expected", "holds"},
	}
	ok := true
	row := func(name, measured, expected string, holds bool) {
		t.Rows = append(t.Rows, []string{name, measured, expected, fmt.Sprint(holds)})
		ok = ok && holds
	}

	// C1 — identical delegation-free workload (with one in-flight loser)
	// through plain ARIES and ARIES/RH, comparing counter for counter.
	runC1 := func(begin func() (wal.TxID, error), update func(wal.TxID, wal.ObjectID, []byte) error,
		commit func(wal.TxID) error, flush func(wal.LSN) error, crash, recoverFn func() error) error {
		if _, err := runDelegationFreeWorkload(txns, updates, begin, update, commit); err != nil {
			return err
		}
		loser, err := begin()
		if err != nil {
			return err
		}
		for j := 0; j < updates; j++ {
			if err := update(loser, wal.ObjectID(1_000_000+j), []byte("loser")); err != nil {
				return err
			}
		}
		if err := flush(1 << 62); err != nil {
			return err
		}
		if err := crash(); err != nil {
			return err
		}
		return recoverFn()
	}
	base := newAries()
	if err := runC1(base.Begin, base.Update, base.Commit, base.Log().Flush, base.Crash, base.Recover); err != nil {
		return nil, err
	}
	rh, err := core.New(core.Options{PoolSize: 256, GroupCommit: core.GroupCommitOff})
	if err != nil {
		return nil, err
	}
	if err := runC1(rh.Begin, rh.Update, rh.Commit, rh.Log().Flush, rh.Crash, rh.Recover); err != nil {
		return nil, err
	}
	m, bs, trace := rh.Metrics(), base.Stats(), rh.LastRecoveryTrace()
	appends := m.Counter("wal.appends")
	row("C1 log records appended (RH vs ARIES)",
		fmt.Sprintf("%d vs %d", appends, base.Log().Stats().Appends),
		"equal", appends == base.Log().Stats().Appends)
	row("C1 recovery forward records",
		fmt.Sprintf("%d vs %d", trace.ForwardRecords, bs.RecForwardRecords),
		"equal", trace.ForwardRecords == bs.RecForwardRecords)
	row("C1 recovery CLRs",
		fmt.Sprintf("%d vs %d", trace.CLRs, bs.RecCLRs),
		"equal", trace.CLRs == bs.RecCLRs)

	// C2 — delegate delegObjects objects carrying different update counts;
	// the cost must be one append per object and no device flushes.
	e2, err := core.New(core.Options{PoolSize: 256})
	if err != nil {
		return nil, err
	}
	tor, err := e2.Begin()
	if err != nil {
		return nil, err
	}
	tee, err := e2.Begin()
	if err != nil {
		return nil, err
	}
	for k := 0; k < delegObjects; k++ {
		for u := 0; u <= k%3; u++ {
			if err := e2.Update(tor, wal.ObjectID(k+1), []byte("v")); err != nil {
				return nil, err
			}
		}
	}
	before := e2.Metrics()
	if err := e2.DelegateAll(tor, tee); err != nil {
		return nil, err
	}
	d := e2.Metrics().Sub(before)
	row("C2 appends per delegated object",
		fmt.Sprintf("%d/%d", d.Counter("wal.appends"), delegObjects),
		"1 per object", d.Counter("wal.appends") == uint64(delegObjects))
	row("C2 device flushes during delegation",
		fmt.Sprint(d.Counter("wal.flushes")), "0", d.Counter("wal.flushes") == 0)

	// C3 — crash a delegation workload and watch the undo.visit stream.
	e3, err := core.New(core.Options{PoolSize: 256})
	if err != nil {
		return nil, err
	}
	l1, err := e3.Begin()
	if err != nil {
		return nil, err
	}
	l2, err := e3.Begin()
	if err != nil {
		return nil, err
	}
	w, err := e3.Begin()
	if err != nil {
		return nil, err
	}
	for i := 0; i < updates; i++ {
		for _, p := range []struct {
			tx  wal.TxID
			obj wal.ObjectID
		}{{l1, wal.ObjectID(1 + i%4)}, {l2, wal.ObjectID(10 + i%4)}, {w, wal.ObjectID(20 + i%4)}} {
			if err := e3.Update(p.tx, p.obj, []byte("x")); err != nil {
				return nil, err
			}
		}
	}
	if err := e3.Delegate(l1, l2, 1); err != nil {
		return nil, err
	}
	if err := e3.Commit(w); err != nil {
		return nil, err
	}
	if err := e3.Crash(); err != nil {
		return nil, err
	}
	var visits []wal.LSN
	e3.SetEventHook(func(ev obs.Event) {
		if ev.Name == "undo.visit" {
			visits = append(visits, wal.LSN(ev.LSN))
		}
	})
	if err := e3.Recover(); err != nil {
		return nil, err
	}
	e3.SetEventHook(nil)
	monotone, seen := true, make(map[wal.LSN]bool, len(visits))
	maxVisits := 0
	for i, lsn := range visits {
		if seen[lsn] {
			maxVisits = 2
		}
		seen[lsn] = true
		if i > 0 && lsn >= visits[i-1] {
			monotone = false
		}
	}
	if maxVisits == 0 && len(visits) > 0 {
		maxVisits = 1
	}
	tr3 := e3.LastRecoveryTrace()
	row("C3 max visits per record", fmt.Sprint(maxVisits), "≤ 1", maxVisits <= 1)
	row("C3 visit LSNs strictly decreasing", fmt.Sprint(monotone), "true", monotone)
	row("C3 backward work / log records",
		fmt.Sprintf("%d/%d", tr3.BackwardVisited+tr3.BackwardSkipped, e3.Log().Head()),
		"≤ 1 pass", tr3.BackwardVisited+tr3.BackwardSkipped <= uint64(e3.Log().Head()))

	t.Verdict = fmt.Sprintf("all invariants hold = %v (asserted continuously by `go test ./internal/core -run 'Claim|Invariant'`)", ok)
	return t, nil
}
