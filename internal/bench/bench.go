// Package bench implements the experiment harness behind cmd/rhbench and
// the root-level benchmarks: one experiment per efficiency claim of the
// paper's §4.2 (plus the §3.2 cost analysis of the naïve designs and the
// §3.7 EOS variant), each producing a table whose *shape* reproduces the
// paper's argument.  Absolute numbers are this machine's; the claims are
// about ratios and growth rates.
package bench

import (
	"fmt"
	"strings"
	"time"

	"ariesrh/internal/aries"
	"ariesrh/internal/core"
	"ariesrh/internal/eos"
	"ariesrh/internal/rewrite"
	"ariesrh/internal/sim"
	"ariesrh/internal/wal"
)

// Table is one experiment's output.
type Table struct {
	// ID is the experiment identifier used in EXPERIMENTS.md (e.g. "E1").
	ID string
	// Title is a one-line description.
	Title string
	// Claim quotes the paper statement the experiment tests.
	Claim string
	// Headers and Rows are the tabular results.
	Headers []string
	Rows    [][]string
	// Verdict summarizes whether the shape holds.
	Verdict string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintf(&b, "verdict: %s\n", t.Verdict)
	return b.String()
}

// newCore returns a fresh ARIES/RH engine.
func newCore() *core.Engine {
	e, err := core.New(core.Options{PoolSize: 256})
	if err != nil {
		panic(err)
	}
	return e
}

// newAries returns a fresh conventional ARIES engine.
func newAries() *aries.Engine {
	e, err := aries.New(aries.Options{PoolSize: 256})
	if err != nil {
		panic(err)
	}
	return e
}

// newRewrite returns a fresh rewriting baseline engine.
func newRewrite(mode rewrite.Mode) *rewrite.Engine {
	e, err := rewrite.New(rewrite.Options{Mode: mode, PoolSize: 256})
	if err != nil {
		panic(err)
	}
	return e
}

// newEOS returns a fresh EOS-style engine.
func newEOS() *eos.Engine {
	e, err := eos.New(eos.Options{PoolSize: 256})
	if err != nil {
		panic(err)
	}
	return e
}

// runDelegationFreeWorkload runs txns transactions of updates each and
// returns the wall time of normal processing.  The generic engine
// operations are expressed through small closures so the same workload
// drives both engines without interface-dispatch asymmetry.
func runDelegationFreeWorkload(txns, updates int,
	begin func() (wal.TxID, error),
	update func(wal.TxID, wal.ObjectID, []byte) error,
	commit func(wal.TxID) error,
) (time.Duration, error) {
	val := []byte("workload-value-0123456789abcdef")
	start := time.Now()
	for i := 0; i < txns; i++ {
		tx, err := begin()
		if err != nil {
			return 0, err
		}
		for j := 0; j < updates; j++ {
			obj := wal.ObjectID(i*updates + j + 1)
			if err := update(tx, obj, val); err != nil {
				return 0, err
			}
		}
		if err := commit(tx); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// E1NoDelegationOverhead compares ARIES and ARIES/RH on a delegation-free
// workload: normal-processing throughput and full crash-recovery cost must
// match ("in the absence of delegation ARIES/RH reduces to the original
// algorithm").
func E1NoDelegationOverhead(txns, updates, rounds int) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   fmt.Sprintf("no delegation, no overhead (%d txns x %d updates, best of %d)", txns, updates, rounds),
		Claim:   "§4.2: in the absence of delegation ARIES/RH reduces to ARIES; no penalty when the feature is unused",
		Headers: []string{"engine", "normal µs/update", "recovery ms", "fwd records", "bwd records", "CLRs"},
	}
	type result struct {
		normal   time.Duration
		recovery time.Duration
		fwd, bwd uint64
		clrs     uint64
	}
	best := func(f func() (result, error)) (result, error) {
		var out result
		for r := 0; r < rounds; r++ {
			got, err := f()
			if err != nil {
				return out, err
			}
			if r == 0 || got.normal < out.normal {
				out.normal = got.normal
			}
			if r == 0 || got.recovery < out.recovery {
				out.recovery = got.recovery
				out.fwd, out.bwd, out.clrs = got.fwd, got.bwd, got.clrs
			}
		}
		return out, nil
	}

	runARIES := func() (result, error) {
		e := newAries()
		d, err := runDelegationFreeWorkload(txns, updates, e.Begin, e.Update, e.Commit)
		if err != nil {
			return result{}, err
		}
		// Leave one loser transaction so the backward pass has work.
		loser, err := e.Begin()
		if err != nil {
			return result{}, err
		}
		for j := 0; j < updates; j++ {
			if err := e.Update(loser, wal.ObjectID(1_000_000+j), []byte("loser")); err != nil {
				return result{}, err
			}
		}
		if err := e.Log().Flush(1 << 62); err != nil {
			return result{}, err
		}
		if err := e.Crash(); err != nil {
			return result{}, err
		}
		rStart := time.Now()
		if err := e.Recover(); err != nil {
			return result{}, err
		}
		s := e.Stats()
		return result{
			normal:   d,
			recovery: time.Since(rStart),
			fwd:      s.RecForwardRecords,
			bwd:      s.RecBackwardVisited,
			clrs:     s.RecCLRs,
		}, nil
	}
	runRH := func() (result, error) {
		e := newCore()
		d, err := runDelegationFreeWorkload(txns, updates, e.Begin, e.Update, e.Commit)
		if err != nil {
			return result{}, err
		}
		loser, err := e.Begin()
		if err != nil {
			return result{}, err
		}
		for j := 0; j < updates; j++ {
			if err := e.Update(loser, wal.ObjectID(1_000_000+j), []byte("loser")); err != nil {
				return result{}, err
			}
		}
		if err := e.Log().Flush(1 << 62); err != nil {
			return result{}, err
		}
		if err := e.Crash(); err != nil {
			return result{}, err
		}
		rStart := time.Now()
		if err := e.Recover(); err != nil {
			return result{}, err
		}
		s := e.Stats()
		return result{
			normal:   d,
			recovery: time.Since(rStart),
			fwd:      s.RecForwardRecords,
			bwd:      s.RecBackwardVisited,
			clrs:     s.RecCLRs,
		}, nil
	}

	ra, err := best(runARIES)
	if err != nil {
		return nil, err
	}
	rr, err := best(runRH)
	if err != nil {
		return nil, err
	}
	perUpdate := func(d time.Duration) string {
		return fmt.Sprintf("%.2f", float64(d.Microseconds())/float64(txns*updates))
	}
	t.Rows = append(t.Rows, []string{"ARIES", perUpdate(ra.normal), fmt.Sprintf("%.2f", float64(ra.recovery.Microseconds())/1000),
		fmt.Sprint(ra.fwd), fmt.Sprint(ra.bwd), fmt.Sprint(ra.clrs)})
	t.Rows = append(t.Rows, []string{"ARIES/RH", perUpdate(rr.normal), fmt.Sprintf("%.2f", float64(rr.recovery.Microseconds())/1000),
		fmt.Sprint(rr.fwd), fmt.Sprint(rr.bwd), fmt.Sprint(rr.clrs)})
	ratio := float64(rr.normal) / float64(ra.normal)
	recRatio := float64(rr.recovery) / float64(ra.recovery)
	t.Verdict = fmt.Sprintf("normal-processing ratio RH/ARIES = %.2f, recovery ratio = %.2f (expected ≈ 1.0); identical pass sizes = %v",
		ratio, recRatio, ra.fwd == rr.fwd)
	return t, nil
}

// E2DelegationLinearity measures DelegateAll cost against the number of
// objects delegated.
func E2DelegationLinearity(sizes []int, reps int) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "normal-processing delegation cost vs objects delegated",
		Claim:   "§4.2: the cost of delegations is linear in the number of operations (objects) delegated; posting one delegation costs one log append plus an Ob_List move",
		Headers: []string{"objects", "total µs", "µs/object", "log appends"},
	}
	var firstPer, lastPer float64
	for _, n := range sizes {
		var bestD time.Duration
		var appends uint64
		for rep := 0; rep < reps; rep++ {
			e := newCore()
			tor, err := e.Begin()
			if err != nil {
				return nil, err
			}
			tee, err := e.Begin()
			if err != nil {
				return nil, err
			}
			for i := 0; i < n; i++ {
				if err := e.Update(tor, wal.ObjectID(i+1), []byte("v")); err != nil {
					return nil, err
				}
			}
			before := e.Log().Stats()
			start := time.Now()
			if err := e.DelegateAll(tor, tee); err != nil {
				return nil, err
			}
			d := time.Since(start)
			if rep == 0 || d < bestD {
				bestD = d
				appends = e.Log().Stats().Sub(before).Appends
			}
		}
		per := float64(bestD.Nanoseconds()) / 1000 / float64(n)
		if firstPer == 0 {
			firstPer = per
		}
		lastPer = per
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.1f", float64(bestD.Nanoseconds())/1000),
			fmt.Sprintf("%.3f", per),
			fmt.Sprint(appends),
		})
	}
	t.Verdict = fmt.Sprintf("per-object cost stays flat across %dx size growth (%.3f → %.3f µs/object): linear total cost, O(1) per delegated object",
		sizes[len(sizes)-1]/sizes[0], firstPer, lastPer)
	return t, nil
}

// E3RecoveryVsDelegationRate compares recovery cost across delegation
// rates for ARIES/RH and the eager/lazy rewriting baselines.
func E3RecoveryVsDelegationRate(steps int, rates []float64) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   fmt.Sprintf("recovery cost vs delegation rate (%d-step histories)", steps),
		Claim:   "§4.2: ARIES/RH adds no extra log sweeps; recovery does the same passes as ARIES regardless of how much delegation the history contains, while the naïve designs pay rewrite I/O",
		Headers: []string{"deleg rate", "engine", "recovery ms", "fwd records", "bwd visited", "rewrites", "random log writes"},
	}
	for _, rate := range rates {
		cfg := sim.Config{
			Seed:           42,
			Steps:          steps,
			Objects:        steps / 8,
			MaxActive:      8,
			DelegationRate: rate,
			TerminateRate:  0.10,
			AbortFraction:  0.3,
		}
		trace := sim.Generate(cfg)
		cut := len(trace) // crash at the very end: maximal recovery work
		type eng struct {
			name   string
			target sim.Target
			// stats returns cumulative (fwd, bwd, rewrites); the
			// harness diffs around recovery because some counters
			// (e.g. backward positions visited) also accumulate
			// during normal-processing aborts.
			stats func() (fwd, bwd, rw uint64)
			logSt func() wal.AccessStats
		}
		ce := newCore()
		ee := newRewrite(rewrite.Eager)
		le := newRewrite(rewrite.Lazy)
		engines := []eng{
			{"ARIES/RH", sim.CoreTarget{Engine: ce}, func() (uint64, uint64, uint64) {
				s := ce.Stats()
				return s.RecForwardRecords, s.RecBackwardVisited, 0
			}, ce.Log().Stats},
			{"eager", sim.RewriteTarget{Engine: ee}, func() (uint64, uint64, uint64) {
				s := ee.Stats()
				return s.RecForwardRecords, s.RecBackwardVisited, s.RecRewrites
			}, ee.Log().Stats},
			{"lazy", sim.RewriteTarget{Engine: le}, func() (uint64, uint64, uint64) {
				s := le.Stats()
				return s.RecForwardRecords, s.RecBackwardVisited, s.RecRewrites
			}, le.Log().Stats},
		}
		for _, en := range engines {
			rep := sim.NewReplayer(en.target, trace)
			if err := rep.RunTo(cut); err != nil {
				return nil, fmt.Errorf("%s rate %.2f: %w", en.name, rate, err)
			}
			logBefore := en.logSt()
			fwd0, bwd0, rw0 := en.stats()
			start := time.Now()
			if err := rep.CrashRecover(); err != nil {
				return nil, fmt.Errorf("%s rate %.2f: %w", en.name, rate, err)
			}
			d := time.Since(start)
			fwd1, bwd1, rw1 := en.stats()
			fwd, bwd, rw := fwd1-fwd0, bwd1-bwd0, rw1-rw0
			logDiff := en.logSt().Sub(logBefore)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.2f", rate),
				en.name,
				fmt.Sprintf("%.3f", float64(d.Microseconds())/1000),
				fmt.Sprint(fwd),
				fmt.Sprint(bwd),
				fmt.Sprint(rw),
				fmt.Sprint(logDiff.RewriteFlushes),
			})
		}
	}
	t.Verdict = "ARIES/RH performs zero rewrites at every delegation rate; the lazy baseline's recovery rewrites grow with the rate (random stable-log writes), and the eager baseline pays before the crash (see E4)"
	return t, nil
}

// E4EagerSweepVsLogLength measures the cost of ONE delegation as the log
// grows: the eager design sweeps the log (Figure 1), ARIES/RH appends one
// record.
func E4EagerSweepVsLogLength(lengths []int) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "cost of one delegation vs log length",
		Claim:   "§3.2: the eager design's per-delegation accesses are random and grow with the log ('in principle sweeping the whole log'); RH posts one append regardless",
		Headers: []string{"log records", "engine", "records read", "rewrites", "log appends", "µs"},
	}
	for _, pad := range lengths {
		// Eager engine.
		{
			e := newRewrite(rewrite.Eager)
			tor, _ := e.Begin()
			if err := e.Update(tor, 1, []byte("v")); err != nil {
				return nil, err
			}
			filler, _ := e.Begin()
			for i := 0; i < pad; i++ {
				if err := e.Update(filler, wal.ObjectID(100+i), []byte("pad")); err != nil {
					return nil, err
				}
			}
			tee, _ := e.Begin()
			logBefore := e.Log().Stats()
			start := time.Now()
			if err := e.Delegate(tor, tee, 1); err != nil {
				return nil, err
			}
			d := time.Since(start)
			diff := e.Log().Stats().Sub(logBefore)
			s := e.Stats()
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(pad), "eager",
				fmt.Sprint(s.DelegateSweepReads),
				fmt.Sprint(s.Rewrites),
				fmt.Sprint(diff.Appends),
				fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1000),
			})
		}
		// ARIES/RH.
		{
			e := newCore()
			tor, _ := e.Begin()
			if err := e.Update(tor, 1, []byte("v")); err != nil {
				return nil, err
			}
			filler, _ := e.Begin()
			for i := 0; i < pad; i++ {
				if err := e.Update(filler, wal.ObjectID(100+i), []byte("pad")); err != nil {
					return nil, err
				}
			}
			tee, _ := e.Begin()
			logBefore := e.Log().Stats()
			start := time.Now()
			if err := e.Delegate(tor, tee, 1); err != nil {
				return nil, err
			}
			d := time.Since(start)
			diff := e.Log().Stats().Sub(logBefore)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(pad), "ARIES/RH",
				fmt.Sprint(diff.Reads),
				"0",
				fmt.Sprint(diff.Appends),
				fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1000),
			})
		}
	}
	t.Verdict = "eager reads grow linearly with the log; ARIES/RH stays at 1 append and 0 reads per delegation"
	return t, nil
}

// E5EOS runs the EOS-style engine: delegation via image transfer +
// commit-time filtering, redo-only recovery; compared with ARIES/RH on a
// matching workload.
func E5EOS(txns, updates int, delegateEvery int) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   fmt.Sprintf("EOS (NO-UNDO/REDO) delegation: %d txns x %d updates, delegation every %d txns", txns, updates, delegateEvery),
		Claim:   "§3.7: with private logs, delegation hands the delegatee an object image and the delegator filters delegated updates at commit; recovery is a single redo-only sweep",
		Headers: []string{"engine", "normal µs/update", "filtered entries", "recovery ms", "rec records", "rec redone"},
	}
	// EOS.
	{
		e := newEOS()
		val := []byte("workload-value-0123456789abcdef")
		var sink wal.TxID
		start := time.Now()
		for i := 0; i < txns; i++ {
			tx, err := e.Begin()
			if err != nil {
				return nil, err
			}
			for j := 0; j < updates; j++ {
				if err := e.Update(tx, wal.ObjectID(i*updates+j+1), val); err != nil {
					return nil, err
				}
			}
			if delegateEvery > 0 && i%delegateEvery == 0 {
				sinkTx, err := e.Begin()
				if err != nil {
					return nil, err
				}
				if err := e.Delegate(tx, sinkTx, wal.ObjectID(i*updates+1)); err != nil {
					return nil, err
				}
				sink = sinkTx
				if err := e.Commit(sinkTx); err != nil {
					return nil, err
				}
			}
			if err := e.Commit(tx); err != nil {
				return nil, err
			}
		}
		_ = sink
		normal := time.Since(start)
		if err := e.Crash(); err != nil {
			return nil, err
		}
		rStart := time.Now()
		if err := e.Recover(); err != nil {
			return nil, err
		}
		rec := time.Since(rStart)
		s := e.Stats()
		t.Rows = append(t.Rows, []string{
			"EOS",
			fmt.Sprintf("%.2f", float64(normal.Microseconds())/float64(txns*updates)),
			fmt.Sprint(s.Filtered),
			fmt.Sprintf("%.2f", float64(rec.Microseconds())/1000),
			fmt.Sprint(s.RecForwardRecords),
			fmt.Sprint(s.RecRedone),
		})
	}
	// ARIES/RH on the same shape.
	{
		e := newCore()
		val := []byte("workload-value-0123456789abcdef")
		start := time.Now()
		for i := 0; i < txns; i++ {
			tx, err := e.Begin()
			if err != nil {
				return nil, err
			}
			for j := 0; j < updates; j++ {
				if err := e.Update(tx, wal.ObjectID(i*updates+j+1), val); err != nil {
					return nil, err
				}
			}
			if delegateEvery > 0 && i%delegateEvery == 0 {
				sinkTx, err := e.Begin()
				if err != nil {
					return nil, err
				}
				if err := e.Delegate(tx, sinkTx, wal.ObjectID(i*updates+1)); err != nil {
					return nil, err
				}
				if err := e.Commit(sinkTx); err != nil {
					return nil, err
				}
			}
			if err := e.Commit(tx); err != nil {
				return nil, err
			}
		}
		normal := time.Since(start)
		if err := e.Crash(); err != nil {
			return nil, err
		}
		rStart := time.Now()
		if err := e.Recover(); err != nil {
			return nil, err
		}
		rec := time.Since(rStart)
		s := e.Stats()
		t.Rows = append(t.Rows, []string{
			"ARIES/RH",
			fmt.Sprintf("%.2f", float64(normal.Microseconds())/float64(txns*updates)),
			"n/a",
			fmt.Sprintf("%.2f", float64(rec.Microseconds())/1000),
			fmt.Sprint(s.RecForwardRecords),
			fmt.Sprint(s.RecRedone),
		})
	}
	t.Verdict = "EOS recovery is redo-only (no backward pass) and its delegation filter work is proportional to delegated entries; both engines agree on surviving state"
	return t, nil
}
