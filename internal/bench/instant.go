package bench

import (
	"bytes"
	"fmt"
	"time"

	"ariesrh/internal/core"
	"ariesrh/internal/wal"
)

// e14Crashed builds one crashed engine holding a history of roughly
// `records` log records: records/updatesPerObj committed transactions,
// each updating its own object updatesPerObj times, plus `losers`
// in-flight transactions over dedicated objects (left live so recovery's
// backward pass has clusters to sweep).  The whole log is forced before
// the crash, and no checkpoint is taken: recovery replays from LSN 1, so
// its cost is exactly the log length — the variable the experiment
// sweeps.  Returns the engine, the probe object (the last committed one,
// which background drain reaches last) and its expected post-recovery
// value.
func e14Crashed(records, updatesPerObj, losers int, parallel bool) (*core.Engine, wal.ObjectID, []byte, error) {
	objects := records / updatesPerObj
	e, err := core.New(core.Options{
		PoolSize:         8192,
		GroupCommit:      core.GroupCommitOff,
		LogSegmentBytes:  1 << 16,
		ParallelRecovery: parallel,
	})
	if err != nil {
		return nil, 0, nil, err
	}
	var val []byte
	for o := 1; o <= objects; o++ {
		tx, err := e.Begin()
		if err != nil {
			return nil, 0, nil, err
		}
		for u := 0; u < updatesPerObj; u++ {
			val = []byte(fmt.Sprintf("e14-%d-%d-0123456789abcdef0123456789abcdef", o, u))
			if err := e.Update(tx, wal.ObjectID(o), val); err != nil {
				return nil, 0, nil, err
			}
		}
		if err := e.Commit(tx); err != nil {
			return nil, 0, nil, err
		}
	}
	for l := 0; l < losers; l++ {
		tx, err := e.Begin()
		if err != nil {
			return nil, 0, nil, err
		}
		for u := 0; u < updatesPerObj; u++ {
			if err := e.Update(tx, wal.ObjectID(objects+1+l), []byte("e14-loser")); err != nil {
				return nil, 0, nil, err
			}
		}
		// No Commit: a loser for the backward pass.
	}
	// Make the losers' tail durable too — GroupCommitOff already forced
	// every commit — then crash.
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		return nil, 0, nil, err
	}
	if err := e.Crash(); err != nil {
		return nil, 0, nil, err
	}
	return e, wal.ObjectID(objects), val, nil
}

// E14InstantRestart measures what the parallel recovery pipeline buys:
// time-to-first-read (crash to the first ReadObject returning a correct
// value) and full-recovery time, as the log grows.  The sequential
// baseline must replay the whole log before it can serve anything, so its
// first read arrives only after a full linear replay; the pipeline serves
// the first read after the scan+analysis stages plus the probe object's
// own redo chain — it never waits for the other objects' redo or for
// loser clusters that do not cover the probe.  The shape the experiment
// tests: the baseline's time-to-first-read grows linearly with the log,
// while the pipeline's grows far slower (its per-record cost is indexing
// and analysis only, not page application) and stays a small fraction of
// the baseline at every length.
func E14InstantRestart(lengths []int, updatesPerObj, losers int) (*Table, error) {
	if len(lengths) < 2 {
		return nil, fmt.Errorf("E14: need at least two lengths to judge growth")
	}
	t := &Table{
		ID:    "E14",
		Title: "instant restart: time-to-first-read and full recovery vs log length",
		Claim: "a read during pipelined recovery redoes only its own object's chain, so time-to-first-read is decoupled from the redo volume: the sequential baseline's first read pays full replay — linear in the log — while the pipeline's first read pays only scan+analysis, a fraction of replay's per-record cost",
		Headers: []string{"cell", "records", "ttfr_ms", "full_ms", "note"},
	}

	type cell struct {
		records          int
		seqFull, parTTFR float64 // milliseconds
	}
	var cells []cell
	const reps = 3
	for _, n := range lengths {
		if n < updatesPerObj*2 {
			return nil, fmt.Errorf("E14: length %d too small for %d updates/object", n, updatesPerObj)
		}
		var seqFull, seqTTFR, parTTFR, parFull time.Duration = 1<<62, 1<<62, 1<<62, 1<<62
		var records, segments int
		for rep := 0; rep < reps; rep++ {
			// Sequential baseline: Recover blocks for the full replay;
			// the first read is only possible after it.
			e, probe, want, err := e14Crashed(n, updatesPerObj, losers, false)
			if err != nil {
				return nil, fmt.Errorf("E14 seq N=%d: %w", n, err)
			}
			records = int(e.Log().Head())
			start := time.Now()
			if err := e.Recover(); err != nil {
				return nil, fmt.Errorf("E14 seq N=%d: recover: %w", n, err)
			}
			full := time.Since(start)
			v, ok, err := e.ReadObject(probe)
			ttfr := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("E14 seq N=%d: first read: %w", n, err)
			}
			if !ok || !bytes.Equal(v, want) {
				return nil, fmt.Errorf("E14 seq N=%d: first read returned %q, want %q", n, v, want)
			}
			if full < seqFull {
				seqFull = full
			}
			if ttfr < seqTTFR {
				seqTTFR = ttfr
			}

			// Pipeline: Recover returns with redo and undo in flight;
			// the probe read triggers on-demand redo of its own chain.
			e, probe, want, err = e14Crashed(n, updatesPerObj, losers, true)
			if err != nil {
				return nil, fmt.Errorf("E14 par N=%d: %w", n, err)
			}
			start = time.Now()
			if err := e.Recover(); err != nil {
				return nil, fmt.Errorf("E14 par N=%d: recover: %w", n, err)
			}
			v, ok, err = e.ReadObject(probe)
			ttfr = time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("E14 par N=%d: mid-recovery read: %w", n, err)
			}
			if !ok || !bytes.Equal(v, want) {
				return nil, fmt.Errorf("E14 par N=%d: mid-recovery read returned %q, want %q", n, v, want)
			}
			if err := e.WaitRecovered(); err != nil {
				return nil, fmt.Errorf("E14 par N=%d: wait recovered: %w", n, err)
			}
			full = time.Since(start)
			if ttfr < parTTFR {
				parTTFR = ttfr
			}
			if full < parFull {
				parFull = full
			}
			segments = e.LastRecoveryTrace().Segments
		}
		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
		cells = append(cells, cell{records: records, seqFull: ms(seqFull), parTTFR: ms(parTTFR)})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("N=%d/sequential", n),
			fmt.Sprint(records),
			fmt.Sprintf("%.3f", ms(seqTTFR)),
			fmt.Sprintf("%.3f", ms(seqFull)),
			"full replay gates the first read",
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("N=%d/pipeline", n),
			fmt.Sprint(records),
			fmt.Sprintf("%.3f", ms(parTTFR)),
			fmt.Sprintf("%.3f", ms(parFull)),
			fmt.Sprintf("%d segments; first read = scan+analysis + own chain", segments),
		})
	}

	first, last := cells[0], cells[len(cells)-1]
	lenRatio := float64(last.records) / float64(first.records)
	seqRatio := last.seqFull / first.seqFull
	// Marginal cost: how much of each extra log record's replay cost the
	// first read still pays.  Zero would be a perfectly flat TTFR; the
	// pipeline's slope is indexing and analysis only (redo is deferred),
	// so it must stay well under the baseline's, and with more than one
	// CPU the scan stage divides it further across segment workers.
	marginal := (last.parTTFR - first.parTTFR) / (last.seqFull - first.seqFull)
	holds := seqRatio >= lenRatio/2 && // baseline is genuinely linear in the log
		marginal <= 0.5 && // TTFR pays at most half the replay cost per extra record
		last.parTTFR <= last.seqFull/2 // and is well below the baseline at the longest log
	verdict := "HOLDS"
	if !holds {
		verdict = "FAILS"
	}
	t.Verdict = fmt.Sprintf(
		"%s: log grew %.1fx and the baseline's first read slowed %.1fx with it (linear); the pipeline's first read paid %.0f%% of the baseline's per-record cost and arrived %.1fx sooner at the longest log",
		verdict, lenRatio, seqRatio, marginal*100, last.seqFull/last.parTTFR)
	return t, nil
}
