package bench

import (
	"fmt"

	"ariesrh/internal/torture"
)

// E10Torture runs the fault-injection crash sweep (internal/torture) for
// each seed and tabulates faults versus recoveries.  Unlike E1-E9 this is
// not a performance experiment: the "result" is that every enumerated
// crash boundary — including torn-tail and ambiguous-commit ones —
// recovers to the durable-log oracle's state, and that a transient-fault
// run commits everything through the WAL's retry path.
func E10Torture(seeds []int64, steps, maxBoundaries int) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "fault-injection torture: crash boundaries vs clean recoveries",
		Claim: "recovery is correct at every sync boundary, under torn tails, and after transient device faults",
		Headers: []string{"seed", "boundaries", "crashes", "torn", "ambiguous",
			"winners", "losers", "undo_visits", "transient_retries"},
	}
	var totalCrashes, totalBoundaries int
	for _, seed := range seeds {
		cfg := torture.Config{Seed: seed, Steps: steps, MaxBoundaries: maxBoundaries}
		res, err := torture.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		tr, err := torture.TransientRun(torture.Config{Seed: seed, Steps: steps}, 3)
		if err != nil {
			return nil, fmt.Errorf("seed %d transient: %w", seed, err)
		}
		totalCrashes += res.Crashes
		totalBoundaries += res.Boundaries
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(seed),
			fmt.Sprint(res.Boundaries),
			fmt.Sprint(res.Crashes),
			fmt.Sprint(res.TornCrashes),
			fmt.Sprint(res.AmbiguousWins),
			fmt.Sprint(res.Winners),
			fmt.Sprint(res.Losers),
			fmt.Sprint(res.UndoVisits),
			fmt.Sprint(tr.Retries),
		})
	}
	t.Verdict = fmt.Sprintf("recovered cleanly at %d crash points across %d enumerated boundaries (%d seeds)",
		totalCrashes, totalBoundaries, len(seeds))
	return t, nil
}
