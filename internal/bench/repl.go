package bench

import (
	"fmt"
	"net"
	"sync"
	"time"

	"ariesrh/internal/core"
	"ariesrh/internal/repl"
	"ariesrh/internal/wal"
)

// e11Row is one E11 measurement cell.
type e11Row struct {
	committers   int
	mode         string
	commits      uint64
	elapsed      time.Duration
	shippedRecs  uint64
	shippedBytes uint64
	ackBatches   uint64
	ackP50       time.Duration
	ackP99       time.Duration
	catchup      time.Duration
}

// runE11Cell runs the E8 committer workload against a primary whose log
// sits on a delayed device, with a live replica attached over an
// in-process pipe for the whole run, and measures the replication-lag
// series alongside commit throughput.
func runE11Cell(committers, txnsPer, updatesPer int, syncDelay time.Duration, mode core.GroupCommitMode) (e11Row, error) {
	store := newSyncDelayDir(syncDelay)
	eng, err := core.New(core.Options{PoolSize: 4096, LogDir: store, GroupCommit: mode})
	if err != nil {
		return e11Row{}, err
	}
	feed, err := repl.NewPrimary(eng)
	if err != nil {
		return e11Row{}, err
	}
	follower, err := core.New(core.Options{PoolSize: 4096, Follower: true})
	if err != nil {
		return e11Row{}, err
	}
	rep, err := repl.NewReplica(follower)
	if err != nil {
		return e11Row{}, err
	}
	c1, c2 := net.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- feed.Serve(c1) }()
	followDone := make(chan error, 1)
	go func() { followDone <- rep.Follow(c2) }()

	val := []byte("group-commit-payload-0123456789")
	var wg sync.WaitGroup
	errs := make(chan error, committers)
	start := time.Now()
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := wal.ObjectID(1 + w*1024)
			for i := 0; i < txnsPer; i++ {
				tx, err := eng.Begin()
				if err != nil {
					errs <- err
					return
				}
				for j := 0; j < updatesPer; j++ {
					obj := base + wal.ObjectID((i*updatesPer+j)%512)
					if err := eng.Update(tx, obj, val); err != nil {
						errs <- err
						return
					}
				}
				if err := eng.Commit(tx); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return e11Row{}, err
		}
	}

	// Catch-up: how long after the last commit until the replica has
	// replayed AND acknowledged everything the primary flushed.
	if err := eng.Log().Flush(eng.Log().Head()); err != nil {
		return e11Row{}, err
	}
	target := eng.Log().FlushedLSN()
	catchStart := time.Now()
	deadline := catchStart.Add(30 * time.Second)
	for follower.ReplayedLSN() < target || feed.AckedLSN() < target {
		if time.Now().After(deadline) {
			return e11Row{}, fmt.Errorf("replica stuck: replayed %d, acked %d, want %d",
				follower.ReplayedLSN(), feed.AckedLSN(), target)
		}
		time.Sleep(50 * time.Microsecond)
	}
	catchup := time.Since(catchStart)

	snap := eng.Metrics()
	c2.Close()
	<-serveDone
	<-followDone
	feed.Close()

	modeName := "on"
	if mode == core.GroupCommitOff {
		modeName = "off"
	}
	h := snap.Histogram("repl.ack_lag_ns")
	return e11Row{
		committers:   committers,
		mode:         modeName,
		commits:      uint64(committers * txnsPer),
		elapsed:      elapsed,
		shippedRecs:  snap.Counter("repl.shipped_records"),
		shippedBytes: snap.Counter("repl.shipped_bytes"),
		ackBatches:   h.Count,
		ackP50:       time.Duration(h.Quantile(0.50)),
		ackP99:       time.Duration(h.Quantile(0.99)),
		catchup:      catchup,
	}, nil
}

// E11ReplicationLag measures what a hot standby costs — and what it
// inherits from group commit.  A replica is attached for the whole run;
// every cell must end with the replica fully caught up and acknowledged.
// With group commit off the stream degenerates to one tiny batch per
// commit: the ack round-trip is paid per commit record.  With group
// commit on, the leader's coalesced flush publishes whole batches at
// once, so the stream ships fewer, larger messages — records per acked
// batch grows with the committer count while the ack latency stays in
// the same band, i.e. replication lag is bounded by device latency, not
// by offered load.
func E11ReplicationLag(committerCounts []int, txnsPer, updatesPer int, syncDelay time.Duration) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "replication lag vs group-commit mode: a standby rides the coalesced flush",
		Claim: "a live standby does not forfeit the group-commit win: with group commit on, commit throughput still scales with committers while the stream stays fully acknowledged, shipping fewer, larger batches (records per acked batch grows) at no worse ack latency",
		Headers: []string{"committers", "group", "commits", "commits/s", "shipped-recs",
			"ship-KB", "ack-batches", "recs/batch", "ack-p50-us", "ack-p99-us", "catchup-us"},
	}
	var onRecsPerBatch, offRecsPerBatch float64
	for _, n := range committerCounts {
		for _, mode := range []core.GroupCommitMode{core.GroupCommitOn, core.GroupCommitOff} {
			row, err := runE11Cell(n, txnsPer, updatesPer, syncDelay, mode)
			if err != nil {
				return nil, err
			}
			rpb := 0.0
			if row.ackBatches > 0 {
				rpb = float64(row.shippedRecs) / float64(row.ackBatches)
			}
			if n == committerCounts[len(committerCounts)-1] {
				if mode == core.GroupCommitOn {
					onRecsPerBatch = rpb
				} else {
					offRecsPerBatch = rpb
				}
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", row.committers),
				row.mode,
				fmt.Sprintf("%d", row.commits),
				fmt.Sprintf("%.0f", float64(row.commits)/row.elapsed.Seconds()),
				fmt.Sprintf("%d", row.shippedRecs),
				fmt.Sprintf("%.1f", float64(row.shippedBytes)/1024),
				fmt.Sprintf("%d", row.ackBatches),
				fmt.Sprintf("%.1f", rpb),
				fmt.Sprintf("%.1f", float64(row.ackP50.Nanoseconds())/1e3),
				fmt.Sprintf("%.1f", float64(row.ackP99.Nanoseconds())/1e3),
				fmt.Sprintf("%.1f", float64(row.catchup.Nanoseconds())/1e3),
			})
		}
	}
	switch {
	case onRecsPerBatch > offRecsPerBatch*2:
		t.Verdict = fmt.Sprintf("HOLDS: at max committers the stream ships %.1f records/batch with group commit vs %.1f without — the standby rides the coalesced flush; every cell ended fully acknowledged",
			onRecsPerBatch, offRecsPerBatch)
	case onRecsPerBatch > offRecsPerBatch:
		t.Verdict = fmt.Sprintf("PARTIAL: batching helps (%.1f vs %.1f records/batch) but by less than 2x",
			onRecsPerBatch, offRecsPerBatch)
	default:
		t.Verdict = fmt.Sprintf("FAILS: group commit did not batch the stream (%.1f vs %.1f records/batch)",
			onRecsPerBatch, offRecsPerBatch)
	}
	return t, nil
}
