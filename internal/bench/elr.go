package bench

import (
	"fmt"
	"sync"
	"time"

	"ariesrh/internal/core"
	"ariesrh/internal/wal"
)

// e12Row is one E12 measurement cell.
type e12Row struct {
	committers int
	mode       string
	commits    uint64
	waits      uint64
	waitTotal  time.Duration
	violations uint64
	elapsed    time.Duration
}

// runE12Cell runs committers goroutines over a SHARED hot object set —
// unlike E8's disjoint ranges, every transaction contends — with early
// lock release on or off.  Each transaction updates updatesPer
// consecutive objects from the hot set in ascending ID order (a global
// acquisition order, so the workload is deadlock-free) and commits
// through the group flusher, whose sync costs syncDelay.
func runE12Cell(committers, txnsPer, updatesPer, hotObjects int, syncDelay time.Duration, elr bool) (e12Row, error) {
	store := newSyncDelayDir(syncDelay)
	eng, err := core.New(core.Options{
		PoolSize:         4096,
		LogDir:           store,
		GroupCommit:      core.GroupCommitOn,
		EarlyLockRelease: elr,
	})
	if err != nil {
		return e12Row{}, err
	}
	val := []byte("elr-contended-payload-0123456789")

	var wg sync.WaitGroup
	errs := make(chan error, committers)
	start := time.Now()
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPer; i++ {
				tx, err := eng.Begin()
				if err != nil {
					errs <- err
					return
				}
				// Slide a window over the hot set: consecutive ascending
				// IDs keep the global lock order while guaranteeing
				// overlap between workers.
				base := (w*7 + i) % (hotObjects - updatesPer + 1)
				for j := 0; j < updatesPer; j++ {
					obj := wal.ObjectID(1 + base + j)
					if err := eng.Update(tx, obj, val); err != nil {
						errs <- err
						return
					}
				}
				if err := eng.Commit(tx); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return e12Row{}, err
		}
	}

	snap := eng.Metrics()
	wait := snap.Histogram("lock.wait_ns")
	mode := "on"
	if !elr {
		mode = "off"
	}
	return e12Row{
		committers: committers,
		mode:       mode,
		commits:    uint64(committers * txnsPer),
		waits:      wait.Count,
		waitTotal:  time.Duration(wait.Sum),
		violations: snap.Counter("elr.violations"),
		elapsed:    elapsed,
	}, nil
}

// E12EarlyLockRelease measures what controlled lock violation buys on a
// contended commit path.  Without ELR a committer holds its write locks
// across the commit-record flush, so under contention every competitor
// queues behind the device sync and lock wait grows with the committer
// count.  With ELR the locks are released the moment the commit record is
// appended; competitors run inside the pre-durable window (forming commit
// dependencies, counted as violations) and the sync latency drops out of
// the lock hold time.
func E12EarlyLockRelease(committerCounts []int, txnsPer, updatesPer, hotObjects int, syncDelay time.Duration) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "early lock release: lock wait and commit throughput vs contending committers",
		Claim: "releasing write locks at commit-record append instead of commit-record durability removes the device sync from the contention critical path: lock wait per commit drops and throughput rises with committer count",
		Headers: []string{"committers", "elr", "commits", "waits", "wait-total-ms",
			"wait/commit-us", "violations", "commits/s", "us/commit"},
	}
	// The verdict compares the highest-contention cell pair.
	var lastOn, lastOff e12Row
	for _, n := range committerCounts {
		for _, elr := range []bool{false, true} {
			row, err := runE12Cell(n, txnsPer, updatesPer, hotObjects, syncDelay, elr)
			if err != nil {
				return nil, err
			}
			if elr {
				lastOn = row
			} else {
				lastOff = row
			}
			waitPerCommit := float64(row.waitTotal.Nanoseconds()) / float64(row.commits) / 1e3
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", row.committers),
				row.mode,
				fmt.Sprintf("%d", row.commits),
				fmt.Sprintf("%d", row.waits),
				fmt.Sprintf("%.1f", float64(row.waitTotal.Nanoseconds())/1e6),
				fmt.Sprintf("%.1f", waitPerCommit),
				fmt.Sprintf("%d", row.violations),
				fmt.Sprintf("%.0f", float64(row.commits)/row.elapsed.Seconds()),
				fmt.Sprintf("%.1f", float64(row.elapsed.Nanoseconds())/float64(row.commits)/1e3),
			})
		}
	}

	onRate := float64(lastOn.commits) / lastOn.elapsed.Seconds()
	offRate := float64(lastOff.commits) / lastOff.elapsed.Seconds()
	onWait := float64(lastOn.waitTotal.Nanoseconds()) / float64(lastOn.commits)
	offWait := float64(lastOff.waitTotal.Nanoseconds()) / float64(lastOff.commits)
	// A zero on-side wait (locks never contended under ELR) is the best
	// possible outcome; cap the reported ratio rather than dividing by 0.
	waitCut := fmt.Sprintf("%.0fus -> %.0fus", offWait/1e3, onWait/1e3)
	materially := onWait == 0 && offWait > 0
	if onWait > 0 && offWait/onWait >= 1.5 {
		materially = true
		waitCut = fmt.Sprintf("%.1fx, %s", offWait/onWait, waitCut)
	}
	switch {
	case lastOn.violations == 0:
		t.Verdict = "FAILS: no lock violation formed; the workload never opened the ELR window"
	case onRate > offRate && materially:
		t.Verdict = fmt.Sprintf("HOLDS: at %d committers ELR cuts lock wait per commit (%s) and lifts throughput %.2fx (%.0f -> %.0f commits/s)",
			lastOn.committers, waitCut, onRate/offRate, offRate, onRate)
	case onRate > offRate:
		t.Verdict = fmt.Sprintf("PARTIAL: throughput up %.2fx but lock wait only improved from %.0fus to %.0fus per commit at %d committers",
			onRate/offRate, offWait/1e3, onWait/1e3, lastOn.committers)
	default:
		t.Verdict = fmt.Sprintf("FAILS: ELR did not raise throughput at %d committers (%.0f vs %.0f commits/s)",
			lastOn.committers, onRate, offRate)
	}
	return t, nil
}
