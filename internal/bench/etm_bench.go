package bench

import (
	"fmt"
	"time"

	"ariesrh"
	"ariesrh/etm"
)

// E6ETMMacro runs the §2.2 extended-transaction-model workloads end to
// end on top of the public delegation API: a nested-transaction tree
// workload and a split-transaction workload, each compared with a flat
// single-transaction equivalent to show the overhead of synthesizing the
// model from delegation.
func E6ETMMacro(iterations int) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   fmt.Sprintf("ETMs synthesized from delegation (%d iterations each)", iterations),
		Claim:   "§2.2/§6: delegation synthesizes nested and split transactions at performance comparable to tailor-made (here: flat) implementations",
		Headers: []string{"workload", "total ms", "µs/iteration", "delegations"},
	}
	addRow := func(name string, d time.Duration, delegations uint64) {
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2f", float64(d.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(d.Microseconds())/float64(iterations)),
			fmt.Sprint(delegations),
		})
	}

	// Flat baseline: one transaction does both reservations directly.
	{
		db, err := ariesrh.Open(ariesrh.Options{PoolSize: 256})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < iterations; i++ {
			tx, err := db.Begin()
			if err != nil {
				return nil, err
			}
			a := ariesrh.ObjectID(i*2 + 1)
			b := ariesrh.ObjectID(i*2 + 2)
			if err := tx.Update(a, []byte("flight")); err != nil {
				return nil, err
			}
			if err := tx.Update(b, []byte("hotel")); err != nil {
				return nil, err
			}
			if err := tx.Commit(); err != nil {
				return nil, err
			}
		}
		addRow("flat (baseline)", time.Since(start), db.Stats().Delegations)
	}

	// Nested: the trip example — two subtransactions per iteration.
	{
		db, err := ariesrh.Open(ariesrh.Options{PoolSize: 256})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < iterations; i++ {
			trip, err := etm.BeginNested(db)
			if err != nil {
				return nil, err
			}
			a := ariesrh.ObjectID(i*2 + 1)
			b := ariesrh.ObjectID(i*2 + 2)
			if err := trip.Sub(func(res *etm.NestedTx) error {
				return res.Update(a, []byte("flight"))
			}); err != nil {
				return nil, err
			}
			if err := trip.Sub(func(res *etm.NestedTx) error {
				return res.Update(b, []byte("hotel"))
			}); err != nil {
				return nil, err
			}
			if err := trip.Commit(); err != nil {
				return nil, err
			}
		}
		addRow("nested (2 subtxns)", time.Since(start), db.Stats().Delegations)
	}

	// Split: a session updates two objects, splits one off to commit
	// early, then commits the rest.
	{
		db, err := ariesrh.Open(ariesrh.Options{PoolSize: 256})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < iterations; i++ {
			sess, err := db.Begin()
			if err != nil {
				return nil, err
			}
			a := ariesrh.ObjectID(i*2 + 1)
			b := ariesrh.ObjectID(i*2 + 2)
			if err := sess.Update(a, []byte("done")); err != nil {
				return nil, err
			}
			if err := sess.Update(b, []byte("draft")); err != nil {
				return nil, err
			}
			early, err := etm.Split(sess, a)
			if err != nil {
				return nil, err
			}
			if err := early.Commit(); err != nil {
				return nil, err
			}
			if err := sess.Commit(); err != nil {
				return nil, err
			}
		}
		addRow("split (1 split/iter)", time.Since(start), db.Stats().Delegations)
	}

	// Reporting: a rolling job that reports every iteration.
	{
		db, err := ariesrh.Open(ariesrh.Options{PoolSize: 256})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		job, err := db.Begin()
		if err != nil {
			return nil, err
		}
		for i := 0; i < iterations; i++ {
			obj := ariesrh.ObjectID(i + 1)
			if err := job.Update(obj, []byte("progress")); err != nil {
				return nil, err
			}
			if err := etm.Report(job, obj); err != nil {
				return nil, err
			}
		}
		if err := job.Commit(); err != nil {
			return nil, err
		}
		addRow("reporting (1 report/iter)", time.Since(start), db.Stats().Delegations)
	}

	// Joint: two members, coupled by form-dependency, committing as one.
	{
		db, err := ariesrh.Open(ariesrh.Options{PoolSize: 256})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < iterations; i++ {
			j, err := etm.BeginJoint(db, 2)
			if err != nil {
				return nil, err
			}
			if err := j.Member(0).Update(ariesrh.ObjectID(i*2+1), []byte("a")); err != nil {
				return nil, err
			}
			if err := j.Member(1).Update(ariesrh.ObjectID(i*2+2), []byte("b")); err != nil {
				return nil, err
			}
			if err := j.Commit(); err != nil {
				return nil, err
			}
		}
		addRow("joint (2 members)", time.Since(start), db.Stats().Delegations)
	}

	// Open nested: one committing child per iteration plus parent work.
	{
		db, err := ariesrh.Open(ariesrh.Options{PoolSize: 256})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < iterations; i++ {
			on, err := etm.BeginOpenNested(db)
			if err != nil {
				return nil, err
			}
			a := ariesrh.ObjectID(i*2 + 1)
			b := ariesrh.ObjectID(i*2 + 2)
			if err := on.Sub(func(c *ariesrh.Tx) error {
				return c.Update(a, []byte("child"))
			}, nil); err != nil {
				return nil, err
			}
			if err := on.Tx().Update(b, []byte("parent")); err != nil {
				return nil, err
			}
			if err := on.Commit(); err != nil {
				return nil, err
			}
		}
		addRow("open-nested (1 child)", time.Since(start), db.Stats().Delegations)
	}

	t.Verdict = "ETM iterations cost within a small constant of the flat baseline: the models are synthesized from delegations and dependencies (counted per row), not from bespoke recovery machinery"
	return t, nil
}
