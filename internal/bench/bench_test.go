package bench

import (
	"strconv"
	"strings"
	"testing"
)

// The experiment harness is exercised at tiny sizes so its plumbing (and
// the claims' *direction*) stays verified by `go test`.

func TestE1Shape(t *testing.T) {
	tab, err := E1NoDelegationOverhead(20, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Identical forward-pass sizes is the hard part of the claim.
	if tab.Rows[0][3] != tab.Rows[1][3] {
		t.Fatalf("forward records differ: %v vs %v", tab.Rows[0], tab.Rows[1])
	}
}

func TestE2Linear(t *testing.T) {
	tab, err := E2DelegationLinearity([]int{1, 64}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Log appends must equal the object count — one record per
	// delegated object, never more.
	for i, n := range []string{"1", "64"} {
		if tab.Rows[i][3] != n {
			t.Fatalf("row %d appends = %s, want %s", i, tab.Rows[i][3], n)
		}
	}
}

func TestE3ZeroRewritesForRH(t *testing.T) {
	tab, err := E3RecoveryVsDelegationRate(400, []float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	var sawRH, sawLazyRewrites bool
	for _, row := range tab.Rows {
		if row[1] == "ARIES/RH" {
			sawRH = true
			if row[5] != "0" || row[6] != "0" {
				t.Fatalf("ARIES/RH rewrote: %v", row)
			}
		}
		if row[1] == "lazy" && row[5] != "0" {
			sawLazyRewrites = true
		}
	}
	if !sawRH || !sawLazyRewrites {
		t.Fatalf("rows missing: rh=%v lazyRewrites=%v", sawRH, sawLazyRewrites)
	}
}

func TestE4SweepGrowth(t *testing.T) {
	tab, err := E4EagerSweepVsLogLength([]int{200, 2000})
	if err != nil {
		t.Fatal(err)
	}
	var eagerReads []int
	for _, row := range tab.Rows {
		if row[1] == "eager" {
			n, err := strconv.Atoi(row[2])
			if err != nil {
				t.Fatal(err)
			}
			eagerReads = append(eagerReads, n)
		}
		if row[1] == "ARIES/RH" && row[2] != "0" {
			t.Fatalf("RH read the log during delegation: %v", row)
		}
	}
	if len(eagerReads) != 2 || eagerReads[1] < eagerReads[0]*5 {
		t.Fatalf("eager reads did not grow with the log: %v", eagerReads)
	}
}

func TestE5RunsAndAgrees(t *testing.T) {
	tab, err := E5EOS(20, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Both rows report the same number of redone changes: the engines
	// agree on the committed state.
	if tab.Rows[0][5] != tab.Rows[1][5] {
		t.Fatalf("redo counts differ: %v vs %v", tab.Rows[0], tab.Rows[1])
	}
}

func TestE6AllModelsRun(t *testing.T) {
	tab, err := E6ETMMacro(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Delegation counts prove the models run on the delegation API.
	// (Open nested is the exception: its children commit directly and
	// coupling is semantic, so its delegation count may be zero.)
	if tab.Rows[0][3] != "0" {
		t.Fatalf("flat baseline delegated: %v", tab.Rows[0])
	}
	for _, row := range tab.Rows[1:4] {
		if row[3] == "0" {
			t.Fatalf("ETM row without delegations: %v", row)
		}
	}
}

func TestA1FullScanVisitsMore(t *testing.T) {
	tab, err := A1ClusterSweepAblation(600, []float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	cluster, _ := strconv.Atoi(tab.Rows[0][3])
	full, _ := strconv.Atoi(tab.Rows[1][3])
	if full <= cluster {
		t.Fatalf("full scan visited %d ≤ cluster %d", full, cluster)
	}
	if tab.Rows[0][4] != tab.Rows[1][4] {
		t.Fatalf("CLR counts differ: %v vs %v", tab.Rows[0], tab.Rows[1])
	}
}

func TestTableFormat(t *testing.T) {
	tab := &Table{
		ID: "EX", Title: "title", Claim: "claim",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}},
		Verdict: "fine",
	}
	out := tab.Format()
	for _, want := range []string{"EX — title", "claim: claim", "a", "bb", "verdict: fine"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestE14InstantShape(t *testing.T) {
	tab, err := E14InstantRestart([]int{1024, 4096}, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// One sequential and one pipeline row per length.
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4:\n%s", len(tab.Rows), tab.Format())
	}
	// The verdict's timing thresholds are too noisy at test sizes to
	// assert; the correctness checks inside the harness (every first
	// read must return the probe's committed value) are the test.
	if tab.Verdict == "" {
		t.Fatal("empty verdict")
	}
}

func TestE13ArchiveShape(t *testing.T) {
	tab, err := E13ArchiveCost([]int{512, 8192}, 128, 256, 1024, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Two latency cells, two disk cells, one crash-sweep cell.
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5:\n%s", len(tab.Rows), tab.Format())
	}
	if !strings.HasPrefix(tab.Verdict, "HOLDS") {
		t.Fatalf("verdict: %s", tab.Verdict)
	}
}
