package bench

import (
	"fmt"
	"sync"
	"time"

	"ariesrh/internal/core"
	"ariesrh/internal/shard"
	"ariesrh/internal/wal"
)

// benchModRouter routes obj to shard obj % n, so the workload
// generator controls each transaction's participant set exactly.
type benchModRouter struct{}

func (benchModRouter) Route(obj wal.ObjectID, n int) uint32 {
	return uint32(uint64(obj) % uint64(n))
}

// e15Row is one E15 measurement cell.
type e15Row struct {
	shards  int
	mode    string
	commits uint64
	syncs   uint64
	elapsed time.Duration
}

// runE15Cell runs committers goroutines against a fresh sharded
// database whose per-shard logs each sit on their own syncDelayDir.
// In local mode every transaction writes updatesPer objects homed on
// one shard (the worker's, round-robin) and commits through the
// single-shard fast path; in cross mode each transaction alternates
// its updates between two adjacent shards and commits through
// two-phase commit.  Workers own disjoint object slots, so no
// transaction ever blocks on a lock — the only contention is the
// device, which is the point: with group commit off every force
// serializes on its shard's device, and independent shard logs are
// independent force channels.
func runE15Cell(shards, committers, txnsPer, updatesPer int, syncDelay time.Duration, cross bool) (e15Row, error) {
	dirs := make([]wal.Dir, shards)
	delays := make([]*syncDelayDir, shards)
	for i := range dirs {
		delays[i] = newSyncDelayDir(syncDelay)
		dirs[i] = delays[i]
	}
	db, err := shard.Open(shard.Options{
		Shards:      shards,
		LogDirs:     dirs,
		PoolSize:    4096,
		GroupCommit: core.GroupCommitOff,
		Router:      benchModRouter{},
	})
	if err != nil {
		return e15Row{}, err
	}
	defer db.Close()
	var syncs0 uint64
	for _, d := range delays {
		syncs0 += d.syncs.Load()
	}
	val := []byte("sharded-commit-payload-0123456789")

	var wg sync.WaitGroup
	errs := make(chan error, committers)
	start := time.Now()
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			home := w % shards
			for i := 0; i < txnsPer; i++ {
				tx, err := db.Begin()
				if err != nil {
					errs <- err
					return
				}
				for j := 0; j < updatesPer; j++ {
					// Each worker owns a private slot range and cycles
					// within it to bound the page count; the slot picks
					// the object, obj % shards picks the shard.
					slot := 1 + w*512 + (i*updatesPer+j)%256
					s := home
					if cross {
						s = (home + j%2) % shards
					}
					obj := wal.ObjectID(slot*shards + s)
					if err := tx.Update(obj, val); err != nil {
						errs <- err
						return
					}
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return e15Row{}, err
		}
	}

	var syncs uint64
	for _, d := range delays {
		syncs += d.syncs.Load()
	}
	mode := "local"
	if cross {
		mode = "cross"
	}
	return e15Row{
		shards:  shards,
		mode:    mode,
		commits: uint64(committers * txnsPer),
		syncs:   syncs - syncs0,
		elapsed: elapsed,
	}, nil
}

// E15ShardScaling measures commit throughput as the shard count grows
// at a fixed committer count, with every commit forcing its log (group
// commit off — the mode where the device, not the CPU, is the
// bottleneck).  A single engine has ONE commit-force channel: N
// committers serialize behind one device no matter how many there are.
// N shards have N channels — their forces overlap in time — so
// single-shard throughput scales with the shard count until committers
// run out.  The cross cells price what two-phase commit costs when
// every transaction spans two shards: roughly 4 forced syncs per
// commit (participant prepare, coordinator prepare, decision, phase-2
// commit) against the local cells' 1, paid on two channels.
func E15ShardScaling(shardCounts []int, committers, txnsPer, updatesPer int, syncDelay time.Duration) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "sharded commit scaling: per-shard logs as independent force channels",
		Claim: "N per-shard logs give N parallel commit-force channels: single-shard commit throughput scales with the shard count at a fixed committer count, while cross-shard 2PC pays ~4 forced syncs per transaction",
		Headers: []string{"shards", "mode", "commits", "dev-syncs", "syncs/commit",
			"commits/s", "us/commit", "speedup"},
	}
	base := make(map[string]float64) // mode -> commits/s at shardCounts[0]
	var speedupAt4 float64
	for _, n := range shardCounts {
		for _, cross := range []bool{false, true} {
			row, err := runE15Cell(n, committers, txnsPer, updatesPer, syncDelay, cross)
			if err != nil {
				return nil, err
			}
			rate := float64(row.commits) / row.elapsed.Seconds()
			if _, ok := base[row.mode]; !ok {
				base[row.mode] = rate
			}
			speedup := rate / base[row.mode]
			if row.mode == "local" && n == 4 {
				speedupAt4 = speedup
			}
			perCommit := row.elapsed / time.Duration(row.commits)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", row.shards),
				row.mode,
				fmt.Sprintf("%d", row.commits),
				fmt.Sprintf("%d", row.syncs),
				fmt.Sprintf("%.3f", float64(row.syncs)/float64(row.commits)),
				fmt.Sprintf("%.0f", rate),
				fmt.Sprintf("%.1f", float64(perCommit.Nanoseconds())/1e3),
				fmt.Sprintf("%.2fx", speedup),
			})
		}
	}
	switch {
	case speedupAt4 >= 3:
		t.Verdict = fmt.Sprintf("HOLDS: single-shard commit throughput %.2fx at 4 shards vs 1 (>= 3x)", speedupAt4)
	case speedupAt4 > 0:
		t.Verdict = fmt.Sprintf("FAILS: single-shard commit throughput only %.2fx at 4 shards vs 1 (want >= 3x)", speedupAt4)
	default:
		t.Verdict = "PARTIAL: sweep did not include both 1 and 4 shards; no scaling verdict"
	}
	return t, nil
}
