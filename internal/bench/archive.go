package bench

import (
	"fmt"
	"time"

	"ariesrh/internal/torture"
	"ariesrh/internal/wal"
)

// dirBytes sums the sizes of every device in dir — the log's physical
// footprint on the stable medium.
func dirBytes(dir wal.Dir) (int64, error) {
	names, err := dir.List()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, name := range names {
		dev, err := dir.Open(name)
		if err != nil {
			return 0, err
		}
		n, err := dev.Size()
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// e13Fill appends n update records to a fresh segmented log and flushes
// them, returning the log and its directory.
func e13Fill(n int, segmentBytes int64) (*wal.Log, *wal.MemDir, error) {
	dir := wal.NewMemDir()
	l, err := wal.NewLogWith(dir, wal.LogOptions{SegmentBytes: segmentBytes})
	if err != nil {
		return nil, nil, err
	}
	val := []byte("archive-bench-payload-0123456789")
	for i := 0; i < n; i++ {
		if _, err := l.Append(&wal.Record{
			Type:   wal.TypeUpdate,
			TxID:   wal.TxID(i/8 + 1),
			Object: wal.ObjectID(i%64 + 1),
			After:  val,
		}); err != nil {
			return nil, nil, err
		}
	}
	if err := l.Flush(l.Head()); err != nil {
		return nil, nil, err
	}
	return l, dir, nil
}

// E13ArchiveCost measures what the segmented archive buys over a
// rewrite-the-device compaction:
//
//  1. Archive latency versus retained log length: dropping a FIXED prefix
//     from logs of growing length.  The archive commits by writing a new
//     manifest generation and deleting whole sealed segments — it never
//     rewrites live bytes — so its cost tracks the segments dropped (plus
//     a manifest proportional to the segment count), not the bytes
//     retained.  A compaction that rewrites the device would scale with
//     the retained length.
//
//  2. Disk footprint under archive-while-append: a windowed workload
//     (append, flush, archive everything older than the window) must hold
//     the directory's peak size near the window, while the same appends
//     without archiving grow without bound.
//
//  3. Crash safety: the rotation/archive torture sweep
//     (torture.RotationRun) crashes the maintenance paths at every sync
//     boundary and requires oracle-exact recovery at each one.
func E13ArchiveCost(lengths []int, dropRecords, windowRecords int, segmentBytes int64, sweepRounds, sweepMaxBoundaries int) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "segmented archive: latency vs log length, disk bound under windowed archiving, crash sweep",
		Claim: "archiving drops whole sealed segments behind a manifest bump and never rewrites live bytes: latency is flat in the retained log length, a windowed archive bounds the device footprint, and a crash at any sync boundary of the rotation/archive paths recovers exactly",
		Headers: []string{"cell", "records", "segments", "archive_us", "dir_bytes", "note"},
	}

	// 1. Latency: drop the same prefix from ever-longer logs.
	type latCell struct {
		records int
		micros  float64
	}
	var lat []latCell
	for _, n := range lengths {
		if n <= dropRecords {
			return nil, fmt.Errorf("E13: length %d must exceed dropRecords %d", n, dropRecords)
		}
		// Median-of-few to keep MemDir timing noise out of the verdict.
		const reps = 5
		best := time.Duration(1<<63 - 1)
		var segsBefore int
		var retained int64
		for rep := 0; rep < reps; rep++ {
			l, dir, err := e13Fill(n, segmentBytes)
			if err != nil {
				return nil, err
			}
			segsBefore = len(l.Segments())
			start := time.Now()
			if err := l.Archive(wal.LSN(dropRecords)); err != nil {
				return nil, err
			}
			if d := time.Since(start); d < best {
				best = d
			}
			if retained, err = dirBytes(dir); err != nil {
				return nil, err
			}
		}
		micros := float64(best.Nanoseconds()) / 1e3
		lat = append(lat, latCell{records: n, micros: micros})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("latency/N=%d", n),
			fmt.Sprint(n),
			fmt.Sprint(segsBefore),
			fmt.Sprintf("%.1f", micros),
			fmt.Sprint(retained),
			fmt.Sprintf("drop first %d records", dropRecords),
		})
	}

	// 2. Disk bound: windowed archive-while-append versus unbounded growth.
	grow := lengths[len(lengths)-1]
	noArchLog, noArchDir, err := e13Fill(grow, segmentBytes)
	if err != nil {
		return nil, err
	}
	unbounded, err := dirBytes(noArchDir)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"disk/no-archive",
		fmt.Sprint(grow),
		fmt.Sprint(len(noArchLog.Segments())),
		"-",
		fmt.Sprint(unbounded),
		"final footprint, nothing archived",
	})

	dir := wal.NewMemDir()
	l, err := wal.NewLogWith(dir, wal.LogOptions{SegmentBytes: segmentBytes})
	if err != nil {
		return nil, err
	}
	val := []byte("archive-bench-payload-0123456789")
	var peak int64
	for i := 0; i < grow; i++ {
		if _, err := l.Append(&wal.Record{
			Type:   wal.TypeUpdate,
			TxID:   wal.TxID(i/8 + 1),
			Object: wal.ObjectID(i%64 + 1),
			After:  val,
		}); err != nil {
			return nil, err
		}
		if (i+1)%windowRecords == 0 {
			if err := l.Flush(l.Head()); err != nil {
				return nil, err
			}
			// Peak is sampled at the worst moment: everything appended,
			// nothing reclaimed yet.
			n, err := dirBytes(dir)
			if err != nil {
				return nil, err
			}
			if n > peak {
				peak = n
			}
			if upTo := l.Head() - wal.LSN(windowRecords); upTo > 0 {
				if err := l.Archive(upTo); err != nil {
					return nil, err
				}
			}
		}
	}
	t.Rows = append(t.Rows, []string{
		"disk/windowed",
		fmt.Sprint(grow),
		fmt.Sprint(len(l.Segments())),
		"-",
		fmt.Sprint(peak),
		fmt.Sprintf("peak footprint, archive past window of %d records", windowRecords),
	})

	// 3. Crash safety: the rotation/archive torture sweep.
	sweep, err := torture.RotationRun(torture.RotationConfig{
		Seed:          13,
		Rounds:        sweepRounds,
		MaxBoundaries: sweepMaxBoundaries,
	})
	if err != nil {
		return nil, fmt.Errorf("E13 crash sweep: %w", err)
	}
	sweepWant := sweep.Boundaries
	if sweepMaxBoundaries > 0 && sweepWant > sweepMaxBoundaries {
		sweepWant = sweepMaxBoundaries
	}
	t.Rows = append(t.Rows, []string{
		"crash-sweep",
		fmt.Sprint(sweep.Records),
		"-",
		"-",
		"-",
		fmt.Sprintf("boundaries=%d crashes=%d torn=%d rotations=%d archives=%d base=%d",
			sweep.Boundaries, sweep.Crashes, sweep.TornCrashes,
			sweep.Rotations, sweep.Archives, sweep.ArchivedBase),
	})

	// Verdicts: latency sublinear in length, footprint bounded, sweep clean.
	first, last := lat[0], lat[len(lat)-1]
	lenRatio := float64(last.records) / float64(first.records)
	latRatio := last.micros / first.micros
	if first.micros <= 0 {
		latRatio = 1
	}
	flat := latRatio <= lenRatio/2
	bounded := peak*4 <= unbounded
	clean := sweep.Crashes == sweepWant && sweep.Archives > 0 && sweep.Rotations > 0
	switch {
	case flat && bounded && clean:
		t.Verdict = fmt.Sprintf("HOLDS: %.0fx longer logs cost %.1fx archive latency (flat), windowed archiving caps the device at %d of %d unbounded bytes, and all %d swept crash boundaries recovered exactly",
			lenRatio, latRatio, peak, unbounded, sweep.Crashes)
	case !clean:
		t.Verdict = fmt.Sprintf("FAILS: crash sweep recovered %d of %d boundaries (rotations=%d archives=%d)",
			sweep.Crashes, sweepWant, sweep.Rotations, sweep.Archives)
	case !flat:
		t.Verdict = fmt.Sprintf("FAILS: archive latency grew %.1fx over a %.0fx length increase — archive is not flat in retained length", latRatio, lenRatio)
	default:
		t.Verdict = fmt.Sprintf("FAILS: windowed archiving left a %d-byte peak against %d unbounded — the footprint is not bounded", peak, unbounded)
	}
	return t, nil
}
