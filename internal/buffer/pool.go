// Package buffer implements the buffer pool between the recovery engines
// and the disk manager.  It follows the STEAL / NO-FORCE policy assumed by
// ARIES: dirty pages of uncommitted transactions may be written back
// (steal), and commit does not force data pages — only the log is forced.
// The write-ahead rule is enforced here: before a dirty page is evicted,
// the log is flushed through the page's pageLSN.
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"ariesrh/internal/obs"
	"ariesrh/internal/storage"
	"ariesrh/internal/wal"
)

// ErrPoolExhausted is returned when every frame is pinned and a new page
// must be brought in.
var ErrPoolExhausted = errors.New("buffer: all frames pinned")

// PoolStats counts buffer activity for the benchmark harness.
type PoolStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Flushes   uint64
}

// Sub returns the element-wise difference s - o.
func (s PoolStats) Sub(o PoolStats) PoolStats {
	return PoolStats{
		Hits:      s.Hits - o.Hits,
		Misses:    s.Misses - o.Misses,
		Evictions: s.Evictions - o.Evictions,
		Flushes:   s.Flushes - o.Flushes,
	}
}

type frame struct {
	pid   storage.PageID
	page  *storage.Page
	pins  int
	dirty bool
	elem  *list.Element // position in the LRU list when unpinned
}

// Pool is an LRU buffer pool.  It is safe for concurrent use.
//
// Pool contents are volatile: Crash discards every frame, including dirty
// ones, simulating the loss of main memory at failure time.
type Pool struct {
	mu       sync.Mutex
	disk     storage.DiskManager
	capacity int
	flushLog func(wal.LSN) error

	frames map[storage.PageID]*frame
	lru    *list.List // of *frame, least recently used at the front
	dirty  map[storage.PageID]wal.LSN
	stats  PoolStats
	met    poolMetrics
}

// poolMetrics holds the pool's pre-resolved metric handles.  A fresh pool
// binds them to a private registry so they are never nil; the owning
// engine rebinds them to its own registry via Instrument.
type poolMetrics struct {
	hits, misses, evictions, flushes, walForces *obs.Counter
}

func bindPoolMetrics(r *obs.Registry) poolMetrics {
	return poolMetrics{
		hits:      r.Counter("buffer.hits"),
		misses:    r.Counter("buffer.misses"),
		evictions: r.Counter("buffer.evictions"),
		flushes:   r.Counter("buffer.flushes"),
		walForces: r.Counter("buffer.wal_forces"),
	}
}

// Instrument rebinds the pool's metrics to reg (see internal/obs).  Call
// it at construction time, before the pool is shared.
func (p *Pool) Instrument(reg *obs.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.met = bindPoolMetrics(reg)
}

// NewPool creates a pool of the given capacity over disk.  flushLog is
// invoked with a pageLSN before any dirty page reaches disk (the WAL rule);
// pass a function that flushes the log through that LSN.
func NewPool(disk storage.DiskManager, capacity int, flushLog func(wal.LSN) error) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	if flushLog == nil {
		flushLog = func(wal.LSN) error { return nil }
	}
	return &Pool{
		disk:     disk,
		capacity: capacity,
		flushLog: flushLog,
		frames:   make(map[storage.PageID]*frame),
		lru:      list.New(),
		dirty:    make(map[storage.PageID]wal.LSN),
		met:      bindPoolMetrics(obs.NewRegistry()),
	}
}

// Fetch pins page pid and returns its in-pool image.  The caller must hold
// whatever latch serializes page access (the engines serialize via their
// own mutex) and must Unpin the page when done.
func (p *Pool) Fetch(pid storage.PageID) (*storage.Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[pid]; ok {
		p.stats.Hits++
		p.met.hits.Inc()
		if f.elem != nil {
			p.lru.Remove(f.elem)
			f.elem = nil
		}
		f.pins++
		return f.page, nil
	}
	p.stats.Misses++
	p.met.misses.Inc()
	if err := p.evictForSpaceLocked(); err != nil {
		return nil, err
	}
	page, err := p.disk.ReadPage(pid)
	if err != nil {
		return nil, err
	}
	f := &frame{pid: pid, page: page, pins: 1}
	p.frames[pid] = f
	return page, nil
}

// Prefault brings pid into the pool without pinning it, evicting (and, if
// dirty, writing back under the WAL rule) a victim if needed.  Unlike
// Fetch it does not return the page and requires no engine latch: the
// whole operation happens inside one pool critical section, so it cannot
// interleave with Crash in a way that strands a pin.  Engines use it to
// take page faults — and eviction I/O — off their global latch.
func (p *Pool) Prefault(pid storage.PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.frames[pid]; ok {
		p.stats.Hits++
		p.met.hits.Inc()
		return nil
	}
	p.stats.Misses++
	p.met.misses.Inc()
	if err := p.evictForSpaceLocked(); err != nil {
		return err
	}
	page, err := p.disk.ReadPage(pid)
	if err != nil {
		return err
	}
	f := &frame{pid: pid, page: page}
	f.elem = p.lru.PushBack(f)
	p.frames[pid] = f
	return nil
}

// evictForSpaceLocked makes room for one more frame, flushing a dirty
// victim under the WAL rule if needed.
func (p *Pool) evictForSpaceLocked() error {
	if len(p.frames) < p.capacity {
		return nil
	}
	e := p.lru.Front()
	if e == nil {
		return fmt.Errorf("%w: capacity %d", ErrPoolExhausted, p.capacity)
	}
	victim := e.Value.(*frame)
	if victim.dirty {
		if err := p.flushFrameLocked(victim); err != nil {
			return err
		}
	}
	p.lru.Remove(e)
	delete(p.frames, victim.pid)
	p.stats.Evictions++
	p.met.evictions.Inc()
	return nil
}

// flushFrameLocked writes one dirty frame to disk, honoring the WAL rule.
func (p *Pool) flushFrameLocked(f *frame) error {
	p.met.walForces.Inc()
	if err := p.flushLog(f.page.LSN); err != nil {
		return fmt.Errorf("buffer: WAL flush before evicting page %d: %w", f.pid, err)
	}
	if err := p.disk.WritePage(f.pid, f.page); err != nil {
		return err
	}
	f.dirty = false
	delete(p.dirty, f.pid)
	p.stats.Flushes++
	p.met.flushes.Inc()
	return nil
}

// Unpin releases one pin on pid.  If dirty is true the page is marked
// dirty; recLSN is recorded in the dirty-page table the first time the page
// becomes dirty (the LSN of the earliest record that may need redoing).
func (p *Pool) Unpin(pid storage.PageID, dirty bool, recLSN wal.LSN) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[pid]
	if !ok {
		return fmt.Errorf("buffer: unpin of unfetched page %d", pid)
	}
	if f.pins <= 0 {
		return fmt.Errorf("buffer: unpin of unpinned page %d", pid)
	}
	if dirty {
		f.dirty = true
		if _, ok := p.dirty[pid]; !ok {
			p.dirty[pid] = recLSN
		}
	}
	f.pins--
	if f.pins == 0 {
		f.elem = p.lru.PushBack(f)
	}
	return nil
}

// FlushAll writes every dirty frame to disk (used by clean shutdown and by
// checkpoint variants that flush; fuzzy checkpoints do not call it).
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.dirty {
			if err := p.flushFrameLocked(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// DirtyPageTable returns a copy of the dirty-page table (pid → recLSN),
// as logged by fuzzy checkpoints.
func (p *Pool) DirtyPageTable() map[storage.PageID]wal.LSN {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[storage.PageID]wal.LSN, len(p.dirty))
	for pid, lsn := range p.dirty {
		out[pid] = lsn
	}
	return out
}

// Crash discards every frame — dirty or not — without flushing, simulating
// the loss of volatile memory.
func (p *Pool) Crash() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frames = make(map[storage.PageID]*frame)
	p.lru = list.New()
	p.dirty = make(map[storage.PageID]wal.LSN)
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
