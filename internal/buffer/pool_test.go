package buffer

import (
	"errors"
	"testing"

	"ariesrh/internal/storage"
	"ariesrh/internal/wal"
)

func allocPages(t *testing.T, d storage.DiskManager, n int) []storage.PageID {
	t.Helper()
	out := make([]storage.PageID, n)
	for i := range out {
		pid, err := d.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = pid
	}
	return out
}

func TestPoolFetchUnpin(t *testing.T) {
	disk := storage.NewMemDisk()
	pids := allocPages(t, disk, 3)
	pool := NewPool(disk, 2, nil)
	p, err := pool.Fetch(pids[0])
	if err != nil {
		t.Fatal(err)
	}
	p.Slots[0] = storage.Slot{Used: true, Object: 1, Value: []byte("a")}
	p.LSN = 10
	if err := pool.Unpin(pids[0], true, 10); err != nil {
		t.Fatal(err)
	}
	// Re-fetch hits the cache.
	before := pool.Stats()
	p2, err := pool.Fetch(pids[0])
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Slots[0].Used {
		t.Fatal("cached page lost the write")
	}
	pool.Unpin(pids[0], false, wal.NilLSN)
	if d := pool.Stats().Sub(before); d.Hits != 1 || d.Misses != 0 {
		t.Fatalf("stats diff = %+v", d)
	}
}

func TestPoolEvictionWritesBackDirty(t *testing.T) {
	disk := storage.NewMemDisk()
	pids := allocPages(t, disk, 3)
	flushed := wal.NilLSN
	pool := NewPool(disk, 2, func(lsn wal.LSN) error {
		if lsn > flushed {
			flushed = lsn
		}
		return nil
	})
	p, _ := pool.Fetch(pids[0])
	p.Slots[0] = storage.Slot{Used: true, Object: 42, Value: []byte("x")}
	p.LSN = 77
	pool.Unpin(pids[0], true, 77)
	// Fill the pool: fetching pages 1 and 2 evicts page 0.
	for _, pid := range pids[1:] {
		if _, err := pool.Fetch(pid); err != nil {
			t.Fatal(err)
		}
		pool.Unpin(pid, false, wal.NilLSN)
	}
	if flushed != 77 {
		t.Fatalf("WAL rule: log flushed through %d, want 77", flushed)
	}
	got, err := disk.ReadPage(pids[0])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Slots[0].Used || got.LSN != 77 {
		t.Fatalf("evicted page not written back: %+v", got)
	}
}

func TestPoolExhaustion(t *testing.T) {
	disk := storage.NewMemDisk()
	pids := allocPages(t, disk, 2)
	pool := NewPool(disk, 1, nil)
	if _, err := pool.Fetch(pids[0]); err != nil {
		t.Fatal(err)
	}
	// pids[0] is pinned; no frame can be evicted.
	if _, err := pool.Fetch(pids[1]); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err = %v, want ErrPoolExhausted", err)
	}
	pool.Unpin(pids[0], false, wal.NilLSN)
	if _, err := pool.Fetch(pids[1]); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

func TestPoolCrashDropsDirtyPages(t *testing.T) {
	disk := storage.NewMemDisk()
	pids := allocPages(t, disk, 1)
	pool := NewPool(disk, 4, nil)
	p, _ := pool.Fetch(pids[0])
	p.Slots[0] = storage.Slot{Used: true, Object: 9, Value: []byte("dirty")}
	pool.Unpin(pids[0], true, 5)
	pool.Crash()
	got, err := disk.ReadPage(pids[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.Slots[0].Used {
		t.Fatal("dirty page reached disk despite crash")
	}
	if len(pool.DirtyPageTable()) != 0 {
		t.Fatal("dirty page table survived crash")
	}
}

func TestPoolDirtyPageTableRecLSN(t *testing.T) {
	disk := storage.NewMemDisk()
	pids := allocPages(t, disk, 1)
	pool := NewPool(disk, 4, nil)
	p, _ := pool.Fetch(pids[0])
	p.LSN = 3
	pool.Unpin(pids[0], true, 3)
	p2, _ := pool.Fetch(pids[0])
	p2.LSN = 9
	pool.Unpin(pids[0], true, 9)
	dpt := pool.DirtyPageTable()
	if dpt[pids[0]] != 3 {
		t.Fatalf("recLSN = %d, want 3 (first dirtying LSN)", dpt[pids[0]])
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if len(pool.DirtyPageTable()) != 0 {
		t.Fatal("dirty table non-empty after FlushAll")
	}
	// Dirtying again after a flush records the new recLSN.
	p3, _ := pool.Fetch(pids[0])
	p3.LSN = 20
	pool.Unpin(pids[0], true, 20)
	if dpt := pool.DirtyPageTable(); dpt[pids[0]] != 20 {
		t.Fatalf("recLSN after re-dirty = %d, want 20", dpt[pids[0]])
	}
}

func TestPoolUnpinErrors(t *testing.T) {
	disk := storage.NewMemDisk()
	pids := allocPages(t, disk, 1)
	pool := NewPool(disk, 2, nil)
	if err := pool.Unpin(pids[0], false, wal.NilLSN); err == nil {
		t.Fatal("unpin of unfetched page succeeded")
	}
	pool.Fetch(pids[0])
	pool.Unpin(pids[0], false, wal.NilLSN)
	if err := pool.Unpin(pids[0], false, wal.NilLSN); err == nil {
		t.Fatal("double unpin succeeded")
	}
}
