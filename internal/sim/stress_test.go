package sim

import (
	"math/rand"
	"sync"
	"testing"

	"ariesrh/internal/core"
	"ariesrh/internal/wal"
)

func newCoreTargetMode(t *testing.T, mode core.GroupCommitMode) CoreTarget {
	t.Helper()
	e, err := core.New(core.Options{PoolSize: 64, GroupCommit: mode})
	if err != nil {
		t.Fatal(err)
	}
	return CoreTarget{e}
}

// TestCrashRecoveryGroupCommitModes re-runs the E7 crash-injection sweep
// with group commit explicitly on and explicitly off: the commit path
// differs (coalesced off-latch flush vs synchronous latched flush) but the
// log contents and their recovery interpretation must be identical, so
// both modes must match the oracle.
func TestCrashRecoveryGroupCommitModes(t *testing.T) {
	seeds := int64(25)
	if testing.Short() {
		seeds = 8
	}
	for _, mode := range []core.GroupCommitMode{core.GroupCommitOn, core.GroupCommitOff} {
		name := "on"
		if mode == core.GroupCommitOff {
			name = "off"
		}
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				cfg := defaultCfg(seed)
				trace := Generate(cfg)
				rng := rand.New(rand.NewSource(seed*31 + 7))
				cut := rng.Intn(len(trace) + 1)
				target := newCoreTargetMode(t, mode)
				rep := NewReplayer(target, trace)
				oracle := NewOracle()
				for _, a := range trace[:cut] {
					if err := oracle.Apply(a); err != nil {
						t.Fatal(err)
					}
				}
				if err := rep.RunTo(cut); err != nil {
					t.Fatalf("mode %s seed %d cut %d: %v", name, seed, cut, err)
				}
				losers := rep.LiveSlots()
				if err := rep.CrashRecover(); err != nil {
					t.Fatalf("mode %s seed %d cut %d: recover: %v", name, seed, cut, err)
				}
				oracle.CrashRecover(losers)
				checkAgainstOracle(t, seed, target, oracle, cfg)
			}
		})
	}
}

// TestConcurrentGroupCommitMatchesOracle is the concurrency stress test
// for the group-commit path: several workers replay independent generated
// traces — objects shifted into disjoint ranges, so there are no lock
// conflicts and each worker's history is oracle-checkable in isolation —
// concurrently against ONE engine with group commit on.  Committers from
// different workers race through Commit's append/unlatch/flush-wait/relatch
// dance and share leader flushes.  After the workers drain, the engine is
// crashed and recovered; every worker's objects must match its oracle
// under crash semantics (its still-live transactions are losers).
//
// Run under -race (the Makefile race target includes this package).
func TestConcurrentGroupCommitMatchesOracle(t *testing.T) {
	const workers = 8
	const objStride = 1 << 16 // per-worker object ranges: disjoint by construction

	e, err := core.New(core.Options{PoolSize: 256, GroupCommit: core.GroupCommitOn})
	if err != nil {
		t.Fatal(err)
	}
	target := CoreTarget{e}

	type workerResult struct {
		oracle *Oracle
		losers []int
		shift  wal.ObjectID
		cfg    Config
	}
	results := make([]workerResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cfg := defaultCfg(int64(9000 + w))
			cfg.Steps = 240
			trace := Generate(cfg)
			shift := wal.ObjectID(1 + w*objStride)
			for i := range trace {
				if trace[i].Obj != 0 {
					trace[i].Obj += shift
				}
			}
			oracle := NewOracle()
			rep := NewReplayer(target, trace)
			for _, a := range trace {
				if err := oracle.Apply(a); err != nil {
					errs[w] = err
					return
				}
				if _, err := rep.Step(); err != nil {
					errs[w] = err
					return
				}
			}
			results[w] = workerResult{oracle: oracle, losers: rep.LiveSlots(), shift: shift, cfg: cfg}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	// Quiesced crash: flush everything (so the oracle's durability view
	// matches), lose volatile state, recover.  Every transaction still
	// live at the crash — across all workers — is a loser.
	if err := target.FlushLog(); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}

	stats := e.LogStats()
	if stats.FlushWaiters < stats.GroupedFlushes {
		t.Fatalf("grouped flushes (%d) exceed flush waiters (%d)", stats.GroupedFlushes, stats.FlushWaiters)
	}

	for w := range results {
		r := results[w]
		r.oracle.CrashRecover(r.losers)
		for obj := r.shift; obj < r.shift+wal.ObjectID(r.cfg.Objects)+1; obj++ {
			want, wantOK := r.oracle.Value(obj)
			got, gotOK, err := target.ReadObject(obj)
			if err != nil {
				t.Fatalf("worker %d: read %d: %v", w, obj, err)
			}
			gotPresent := gotOK && len(got) > 0
			if wantOK != gotPresent || (wantOK && string(want) != string(got)) {
				t.Fatalf("worker %d object %d: engine=%q(%v) oracle=%q(%v)",
					w, obj, got, gotPresent, want, wantOK)
			}
		}
	}
}
