// Package sim is the workload and fault-injection harness used to validate
// the correctness properties of §4.1 over randomized histories: after a
// crash, every update whose final delegatee is a loser is undone, and
// every update whose final delegatee is a winner survives.
//
// It provides:
//
//   - a deterministic trace generator (histories of begin / update /
//     delegate / commit / abort that respect locking and the delegation
//     precondition);
//   - an independent oracle that computes the expected database state by
//     direct application of the paper's semantics (no scopes, no clusters,
//     no log — a deliberately different formulation from the engine's);
//   - adapters so the same trace can be replayed against the ARIES/RH
//     engine and the eager/lazy rewriting baselines, whose final states
//     must agree with the oracle and with each other.
package sim

import (
	"fmt"
	"math/rand"

	"ariesrh/internal/wal"
)

// ActionKind discriminates trace actions.
type ActionKind int

// Trace action kinds.
const (
	// ActBegin starts the transaction in slot Tx.
	ActBegin ActionKind = iota
	// ActUpdate sets object Obj to Val through slot Tx.
	ActUpdate
	// ActDelegate delegates Obj from slot Tx to slot Tee.
	ActDelegate
	// ActCommit commits slot Tx.
	ActCommit
	// ActAbort aborts slot Tx.
	ActAbort
	// ActSavepoint records a savepoint for slot Tx (engines that support
	// partial rollback only).
	ActSavepoint
	// ActRollback partially rolls slot Tx back to its latest savepoint.
	ActRollback
	// ActIncrement adds Delta to counter Obj through slot Tx (engines
	// with commutative-increment support only).
	ActIncrement
)

// String names the action kind.
func (k ActionKind) String() string {
	switch k {
	case ActBegin:
		return "begin"
	case ActUpdate:
		return "update"
	case ActDelegate:
		return "delegate"
	case ActCommit:
		return "commit"
	case ActAbort:
		return "abort"
	case ActSavepoint:
		return "savepoint"
	case ActRollback:
		return "rollback"
	case ActIncrement:
		return "increment"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Action is one step of a generated history.  Transactions are named by
// dense slot numbers; the replayer maps slots to engine TxIDs.
type Action struct {
	Kind  ActionKind
	Tx    int
	Tee   int
	Obj   wal.ObjectID
	Val   []byte
	Delta int64
}

// Config parameterizes trace generation.
type Config struct {
	// Seed makes the trace deterministic.
	Seed int64
	// Steps is the number of non-begin actions to generate.
	Steps int
	// Objects is the size of the object ID space.
	Objects int
	// MaxActive bounds concurrently live transactions.
	MaxActive int
	// DelegationRate is the probability that a step is a delegation
	// (when one is legal).
	DelegationRate float64
	// TerminateRate is the probability that a step terminates a
	// transaction; of terminations, AbortFraction abort.
	TerminateRate float64
	AbortFraction float64
	// SavepointRate is the probability that a step sets a savepoint or
	// (if the chosen transaction has one) rolls back to it.  Only used
	// with engines that support partial rollback.
	SavepointRate float64
	// Counters adds that many commutative-counter objects (IDs above
	// Objects); IncrementRate is the probability a step increments one.
	// Only used with engines that support increments.
	Counters      int
	IncrementRate float64
}

// genState tracks, per live transaction slot, what the generator may
// legally do: the objects it may write (free or already held by it) and
// the objects it is responsible for (delegation precondition).
type genState struct {
	live        map[int]bool
	holders     map[wal.ObjectID]map[int]bool // lock co-holders
	responsible map[int]map[wal.ObjectID]bool // slot → objects in its Ob_List
	// hasSavepoint/sinceSavepoint track the single outstanding savepoint
	// per slot and the objects whose responsibility was gained after it.
	hasSavepoint   map[int]bool
	sinceSavepoint map[int]map[wal.ObjectID]bool
	nextSlot       int
}

// Generate produces a deterministic legal trace: updates never block (an
// object is written only by a transaction that could acquire its lock
// without waiting), delegations satisfy the paper's precondition, and
// every live transaction is terminated at the end unless cfg says to
// leave them (losers for a crash test are produced by the replayer's
// crash point instead).
func Generate(cfg Config) []Action {
	if cfg.Objects < 1 {
		cfg.Objects = 16
	}
	if cfg.MaxActive < 2 {
		cfg.MaxActive = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := &genState{
		live:           make(map[int]bool),
		holders:        make(map[wal.ObjectID]map[int]bool),
		responsible:    make(map[int]map[wal.ObjectID]bool),
		hasSavepoint:   make(map[int]bool),
		sinceSavepoint: make(map[int]map[wal.ObjectID]bool),
	}
	var trace []Action

	begin := func() int {
		slot := st.nextSlot
		st.nextSlot++
		st.live[slot] = true
		st.responsible[slot] = make(map[wal.ObjectID]bool)
		trace = append(trace, Action{Kind: ActBegin, Tx: slot})
		return slot
	}
	liveSlots := func() []int {
		var out []int
		for s := range st.live {
			out = append(out, s)
		}
		// Deterministic order for the rng choices.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j-1] > out[j]; j-- {
				out[j-1], out[j] = out[j], out[j-1]
			}
		}
		return out
	}
	terminate := func(slot int, abort bool) {
		kind := ActCommit
		if abort {
			kind = ActAbort
		}
		trace = append(trace, Action{Kind: kind, Tx: slot})
		delete(st.live, slot)
		delete(st.responsible, slot)
		delete(st.hasSavepoint, slot)
		delete(st.sinceSavepoint, slot)
		for _, hs := range st.holders {
			delete(hs, slot)
		}
	}

	for len(trace) < cfg.Steps {
		if len(st.live) == 0 || (len(st.live) < cfg.MaxActive && rng.Float64() < 0.15) {
			begin()
			continue
		}
		slots := liveSlots()
		slot := slots[rng.Intn(len(slots))]
		r := rng.Float64()
		switch {
		case r < cfg.SavepointRate:
			// Alternate: set a savepoint, or roll back to the one set.
			if st.hasSavepoint[slot] {
				trace = append(trace, Action{Kind: ActRollback, Tx: slot})
				// Rolling back revokes responsibility for every
				// object whose updates all postdate the mark; we
				// conservatively forget responsibility gained
				// since the savepoint so later delegations stay
				// well-formed.
				for obj := range st.sinceSavepoint[slot] {
					delete(st.responsible[slot], obj)
				}
				delete(st.hasSavepoint, slot)
				delete(st.sinceSavepoint, slot)
			} else {
				trace = append(trace, Action{Kind: ActSavepoint, Tx: slot})
				st.hasSavepoint[slot] = true
				st.sinceSavepoint[slot] = make(map[wal.ObjectID]bool)
			}
		case cfg.Counters > 0 && r < cfg.SavepointRate+cfg.IncrementRate:
			// Increment a counter: always lock-compatible (counters
			// are only ever incremented in generated traces).
			obj := wal.ObjectID(cfg.Objects + rng.Intn(cfg.Counters) + 1)
			delta := int64(rng.Intn(21) - 10)
			if delta == 0 {
				delta = 1
			}
			trace = append(trace, Action{Kind: ActIncrement, Tx: slot, Obj: obj, Delta: delta})
			st.responsible[slot][obj] = true
			if st.sinceSavepoint[slot] != nil {
				st.sinceSavepoint[slot][obj] = true
			}
		case r < cfg.SavepointRate+cfg.IncrementRate+cfg.TerminateRate:
			terminate(slot, rng.Float64() < cfg.AbortFraction)
		case r < cfg.SavepointRate+cfg.IncrementRate+cfg.TerminateRate+cfg.DelegationRate:
			// Delegate a responsible object to another live slot.
			var objs []wal.ObjectID
			for obj := range st.responsible[slot] {
				objs = append(objs, obj)
			}
			if len(objs) == 0 || len(slots) < 2 {
				continue
			}
			for i := 1; i < len(objs); i++ {
				for j := i; j > 0 && objs[j-1] > objs[j]; j-- {
					objs[j-1], objs[j] = objs[j], objs[j-1]
				}
			}
			obj := objs[rng.Intn(len(objs))]
			tee := slots[rng.Intn(len(slots))]
			if tee == slot {
				continue
			}
			trace = append(trace, Action{Kind: ActDelegate, Tx: slot, Tee: tee, Obj: obj})
			delete(st.responsible[slot], obj)
			delete(st.sinceSavepoint[slot], obj)
			st.responsible[tee][obj] = true
			if st.sinceSavepoint[tee] != nil {
				st.sinceSavepoint[tee][obj] = true
			}
			if st.holders[obj] == nil {
				st.holders[obj] = make(map[int]bool)
			}
			st.holders[obj][tee] = true
		default:
			// Update an object this slot can lock without blocking.
			obj := wal.ObjectID(rng.Intn(cfg.Objects) + 1)
			if hs := st.holders[obj]; len(hs) > 0 && !hs[slot] {
				continue // would block; skip
			}
			val := []byte(fmt.Sprintf("s%d-t%d-o%d-%d", cfg.Seed, slot, obj, len(trace)))
			trace = append(trace, Action{Kind: ActUpdate, Tx: slot, Obj: obj, Val: val})
			if st.holders[obj] == nil {
				st.holders[obj] = make(map[int]bool)
			}
			st.holders[obj][slot] = true
			st.responsible[slot][obj] = true
			if st.sinceSavepoint[slot] != nil {
				st.sinceSavepoint[slot][obj] = true
			}
		}
	}
	return trace
}
