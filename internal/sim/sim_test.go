package sim

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"ariesrh/internal/core"
	"ariesrh/internal/rewrite"
	"ariesrh/internal/storage"
	"ariesrh/internal/wal"
)

func defaultCfg(seed int64) Config {
	return Config{
		Seed:           seed,
		Steps:          120,
		Objects:        24,
		MaxActive:      5,
		DelegationRate: 0.15,
		TerminateRate:  0.12,
		AbortFraction:  0.4,
	}
}

func newCoreTarget(t *testing.T) CoreTarget {
	t.Helper()
	e, err := core.New(core.Options{PoolSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	return CoreTarget{e}
}

func newRewriteTarget(t *testing.T, mode rewrite.Mode) RewriteTarget {
	t.Helper()
	e, err := rewrite.New(rewrite.Options{Mode: mode, PoolSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	return RewriteTarget{e}
}

// checkAgainstOracle compares every object the oracle has seen plus a
// sample of untouched IDs.
func checkAgainstOracle(t *testing.T, seed int64, target Target, oracle *Oracle, cfg Config) {
	t.Helper()
	for obj := wal.ObjectID(1); obj <= wal.ObjectID(cfg.Objects); obj++ {
		want, wantOK := oracle.Value(obj)
		got, gotOK, err := target.ReadObject(obj)
		if err != nil {
			t.Fatalf("seed %d: read %d: %v", seed, obj, err)
		}
		// Engines may report ok=true with an empty value for objects
		// whose updates were all undone; normalize.
		gotPresent := gotOK && len(got) > 0
		if wantOK != gotPresent || (wantOK && !bytes.Equal(want, got)) {
			t.Fatalf("seed %d: object %d: engine=%q(%v) oracle=%q(%v)",
				seed, obj, got, gotPresent, want, wantOK)
		}
	}
}

// TestGenerateDeterministic: identical seeds produce identical traces.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(defaultCfg(7))
	b := Generate(defaultCfg(7))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Tx != b[i].Tx || a[i].Tee != b[i].Tee ||
			a[i].Obj != b[i].Obj || !bytes.Equal(a[i].Val, b[i].Val) {
			t.Fatalf("step %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestGenerateLegal: traces satisfy the structural legality the replayer
// depends on (begins precede use, delegations are well-formed).
func TestGenerateLegal(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		trace := Generate(defaultCfg(seed))
		begun := map[int]bool{}
		live := map[int]bool{}
		responsible := map[int]map[wal.ObjectID]bool{}
		for i, a := range trace {
			switch a.Kind {
			case ActBegin:
				if begun[a.Tx] {
					t.Fatalf("seed %d step %d: double begin of %d", seed, i, a.Tx)
				}
				begun[a.Tx] = true
				live[a.Tx] = true
				responsible[a.Tx] = map[wal.ObjectID]bool{}
			case ActUpdate:
				if !live[a.Tx] {
					t.Fatalf("seed %d step %d: update by dead slot %d", seed, i, a.Tx)
				}
				responsible[a.Tx][a.Obj] = true
			case ActDelegate:
				if !live[a.Tx] || !live[a.Tee] || a.Tx == a.Tee {
					t.Fatalf("seed %d step %d: bad delegate %+v", seed, i, a)
				}
				if !responsible[a.Tx][a.Obj] {
					t.Fatalf("seed %d step %d: ill-formed delegate %+v", seed, i, a)
				}
				delete(responsible[a.Tx], a.Obj)
				responsible[a.Tee][a.Obj] = true
			case ActCommit, ActAbort:
				if !live[a.Tx] {
					t.Fatalf("seed %d step %d: terminate of dead slot %d", seed, i, a.Tx)
				}
				delete(live, a.Tx)
			}
		}
	}
}

// TestCoreMatchesOracleNoCrash settles each trace (aborting stragglers)
// and compares the final database with the oracle.
func TestCoreMatchesOracleNoCrash(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		cfg := defaultCfg(seed)
		trace := Generate(cfg)
		target := newCoreTarget(t)
		rep := NewReplayer(target, trace)
		oracle := NewOracle()
		for _, a := range trace {
			if err := oracle.Apply(a); err != nil {
				t.Fatal(err)
			}
		}
		if err := rep.RunTo(-1); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Settle: abort stragglers in both engine and oracle.
		for _, s := range rep.LiveSlots() {
			if err := oracle.Apply(Action{Kind: ActAbort, Tx: s}); err != nil {
				t.Fatal(err)
			}
		}
		if err := rep.AbortLive(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkAgainstOracle(t, seed, target, oracle, cfg)
	}
}

// TestCoreCrashRecoveryMatchesOracle is E7: randomized crash injection.
// For each seed the trace is cut at a random point, the log is flushed,
// the system crashes and recovers, and the database must match the
// oracle's crash semantics (active transactions are losers).
func TestCoreCrashRecoveryMatchesOracle(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	// SIM_SEEDS scales the sweep for long soak runs (e.g. SIM_SEEDS=5000).
	if env := os.Getenv("SIM_SEEDS"); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n > 0 {
			seeds = n
		}
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		cfg := defaultCfg(seed)
		trace := Generate(cfg)
		rng := rand.New(rand.NewSource(seed * 31))
		cut := rng.Intn(len(trace) + 1)
		target := newCoreTarget(t)
		rep := NewReplayer(target, trace)
		oracle := NewOracle()
		for _, a := range trace[:cut] {
			if err := oracle.Apply(a); err != nil {
				t.Fatal(err)
			}
		}
		if err := rep.RunTo(cut); err != nil {
			t.Fatalf("seed %d cut %d: %v", seed, cut, err)
		}
		losers := rep.LiveSlots()
		if err := rep.CrashRecover(); err != nil {
			t.Fatalf("seed %d cut %d: recover: %v", seed, cut, err)
		}
		oracle.CrashRecover(losers)
		checkAgainstOracle(t, seed, target, oracle, cfg)
	}
}

// TestCoreDoubleCrashMatchesOracle re-crashes immediately after recovery:
// the second recovery must be a no-op semantically (CLR idempotency).
func TestCoreDoubleCrashMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		cfg := defaultCfg(seed)
		trace := Generate(cfg)
		cut := len(trace) / 2
		target := newCoreTarget(t)
		rep := NewReplayer(target, trace)
		oracle := NewOracle()
		for _, a := range trace[:cut] {
			if err := oracle.Apply(a); err != nil {
				t.Fatal(err)
			}
		}
		if err := rep.RunTo(cut); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		losers := rep.LiveSlots()
		if err := rep.CrashRecover(); err != nil {
			t.Fatal(err)
		}
		if err := rep.CrashRecover(); err != nil {
			t.Fatal(err)
		}
		if err := rep.CrashRecover(); err != nil {
			t.Fatal(err)
		}
		oracle.CrashRecover(losers)
		checkAgainstOracle(t, seed, target, oracle, cfg)
	}
}

// TestCrashWithCheckpointMatchesOracle inserts a checkpoint mid-trace.
func TestCrashWithCheckpointMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		cfg := defaultCfg(seed)
		trace := Generate(cfg)
		ckptAt := len(trace) / 3
		cut := 2 * len(trace) / 3
		target := newCoreTarget(t)
		rep := NewReplayer(target, trace)
		oracle := NewOracle()
		for _, a := range trace[:cut] {
			if err := oracle.Apply(a); err != nil {
				t.Fatal(err)
			}
		}
		if err := rep.RunTo(ckptAt); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := target.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := rep.RunTo(cut); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		losers := rep.LiveSlots()
		if err := rep.CrashRecover(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		oracle.CrashRecover(losers)
		checkAgainstOracle(t, seed, target, oracle, cfg)
	}
}

// TestDifferentialEnginesAgree replays the same trace — with the same
// crash point — against ARIES/RH and both rewriting baselines; all three
// must agree with the oracle (and hence with each other).
func TestDifferentialEnginesAgree(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		cfg := defaultCfg(seed)
		trace := Generate(cfg)
		cut := (len(trace) * 3) / 4
		oracle := NewOracle()
		for _, a := range trace[:cut] {
			if err := oracle.Apply(a); err != nil {
				t.Fatal(err)
			}
		}
		var losers []int
		targets := map[string]Target{
			"core":  newCoreTarget(t),
			"eager": newRewriteTarget(t, rewrite.Eager),
			"lazy":  newRewriteTarget(t, rewrite.Lazy),
		}
		for name, target := range targets {
			rep := NewReplayer(target, trace)
			if err := rep.RunTo(cut); err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			losers = rep.LiveSlots()
			if err := rep.CrashRecover(); err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
		}
		oracle.CrashRecover(losers)
		for name, target := range targets {
			t.Run(fmt.Sprintf("seed%d-%s", seed, name), func(t *testing.T) {
				checkAgainstOracle(t, seed, target, oracle, cfg)
			})
		}
	}
}

// TestSavepointWorkloadMatchesOracle mixes partial rollbacks into the
// histories (ARIES/RH only — the rewriting baselines have no savepoints)
// and checks both the settled state and the crash-recovered state against
// the oracle.
func TestSavepointWorkloadMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		cfg := defaultCfg(seed)
		cfg.SavepointRate = 0.10
		trace := Generate(cfg)
		t.Run(fmt.Sprintf("settled-seed%d", seed), func(t *testing.T) {
			target := newCoreTarget(t)
			rep := NewReplayer(target, trace)
			oracle := NewOracle()
			for _, a := range trace {
				if err := oracle.Apply(a); err != nil {
					t.Fatal(err)
				}
			}
			if err := rep.RunTo(-1); err != nil {
				t.Fatal(err)
			}
			for _, s := range rep.LiveSlots() {
				if err := oracle.Apply(Action{Kind: ActAbort, Tx: s}); err != nil {
					t.Fatal(err)
				}
			}
			if err := rep.AbortLive(); err != nil {
				t.Fatal(err)
			}
			checkAgainstOracle(t, seed, target, oracle, cfg)
		})
		t.Run(fmt.Sprintf("crash-seed%d", seed), func(t *testing.T) {
			cut := (len(trace) * 2) / 3
			target := newCoreTarget(t)
			rep := NewReplayer(target, trace)
			oracle := NewOracle()
			for _, a := range trace[:cut] {
				if err := oracle.Apply(a); err != nil {
					t.Fatal(err)
				}
			}
			if err := rep.RunTo(cut); err != nil {
				t.Fatal(err)
			}
			losers := rep.LiveSlots()
			if err := rep.CrashRecover(); err != nil {
				t.Fatal(err)
			}
			oracle.CrashRecover(losers)
			checkAgainstOracle(t, seed, target, oracle, cfg)
		})
	}
}

// checkCounters compares every counter against the oracle.
func checkCounters(t *testing.T, seed int64, target CoreTarget, oracle *Oracle, cfg Config) {
	t.Helper()
	for i := 1; i <= cfg.Counters; i++ {
		obj := wal.ObjectID(cfg.Objects + i)
		got, err := target.CounterValue(obj)
		if err != nil {
			t.Fatalf("seed %d: counter %d: %v", seed, obj, err)
		}
		if want := oracle.Counter(obj); got != want {
			t.Fatalf("seed %d: counter %d = %d, want %d", seed, obj, got, want)
		}
	}
}

// TestCounterWorkloadMatchesOracle mixes commutative increments (and their
// delegations) into the histories; final counters must match the oracle
// both settled and after crash recovery.
func TestCounterWorkloadMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		cfg := defaultCfg(seed)
		cfg.Counters = 6
		cfg.IncrementRate = 0.25
		trace := Generate(cfg)
		t.Run(fmt.Sprintf("settled-seed%d", seed), func(t *testing.T) {
			target := newCoreTarget(t)
			rep := NewReplayer(target, trace)
			oracle := NewOracle()
			for _, a := range trace {
				if err := oracle.Apply(a); err != nil {
					t.Fatal(err)
				}
			}
			if err := rep.RunTo(-1); err != nil {
				t.Fatal(err)
			}
			for _, s := range rep.LiveSlots() {
				if err := oracle.Apply(Action{Kind: ActAbort, Tx: s}); err != nil {
					t.Fatal(err)
				}
			}
			if err := rep.AbortLive(); err != nil {
				t.Fatal(err)
			}
			checkAgainstOracle(t, seed, target, oracle, cfg)
			checkCounters(t, seed, target, oracle, cfg)
		})
		t.Run(fmt.Sprintf("crash-seed%d", seed), func(t *testing.T) {
			cut := (len(trace) * 2) / 3
			target := newCoreTarget(t)
			rep := NewReplayer(target, trace)
			oracle := NewOracle()
			for _, a := range trace[:cut] {
				if err := oracle.Apply(a); err != nil {
					t.Fatal(err)
				}
			}
			if err := rep.RunTo(cut); err != nil {
				t.Fatal(err)
			}
			losers := rep.LiveSlots()
			if err := rep.CrashRecover(); err != nil {
				t.Fatal(err)
			}
			oracle.CrashRecover(losers)
			checkAgainstOracle(t, seed, target, oracle, cfg)
			checkCounters(t, seed, target, oracle, cfg)
		})
	}
}

// TestKitchenSinkWorkload enables everything at once: delegations,
// savepoints, increments, checkpoints, triple crash.
func TestKitchenSinkWorkload(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		cfg := defaultCfg(seed)
		cfg.Steps = 200
		cfg.Counters = 4
		cfg.IncrementRate = 0.15
		cfg.SavepointRate = 0.08
		trace := Generate(cfg)
		cut := (len(trace) * 3) / 4
		target := newCoreTarget(t)
		rep := NewReplayer(target, trace)
		oracle := NewOracle()
		for _, a := range trace[:cut] {
			if err := oracle.Apply(a); err != nil {
				t.Fatal(err)
			}
		}
		if err := rep.RunTo(cut / 2); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := target.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := rep.RunTo(cut); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		losers := rep.LiveSlots()
		for i := 0; i < 3; i++ {
			if err := rep.CrashRecover(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		oracle.CrashRecover(losers)
		checkAgainstOracle(t, seed, target, oracle, cfg)
		checkCounters(t, seed, target, oracle, cfg)
	}
}

// TestFileBackedCrashRecovery runs one full scenario over real files: the
// log, pages and master record live on disk, and recovery replays from
// them — the same stack a production deployment would use.
func TestFileBackedCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	logDir, err := wal.OpenFileDir(dir + "/wal")
	if err != nil {
		t.Fatal(err)
	}
	master, err := wal.OpenFileStore(dir + "/master")
	if err != nil {
		t.Fatal(err)
	}
	disk, err := storage.OpenFileDisk(dir + "/pages.db")
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.New(core.Options{PoolSize: 32, LogDir: logDir, Disk: disk, MasterStore: master})
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultCfg(3)
	trace := Generate(cfg)
	cut := (len(trace) * 2) / 3
	target := CoreTarget{e}
	rep := NewReplayer(target, trace)
	oracle := NewOracle()
	for _, a := range trace[:cut] {
		if err := oracle.Apply(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := rep.RunTo(cut / 2); err != nil {
		t.Fatal(err)
	}
	if err := target.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := rep.RunTo(cut); err != nil {
		t.Fatal(err)
	}
	losers := rep.LiveSlots()
	if err := rep.CrashRecover(); err != nil {
		t.Fatal(err)
	}
	oracle.CrashRecover(losers)
	checkAgainstOracle(t, 3, target, oracle, cfg)
}

// TestCrashDuringRecovery interrupts the recovery backward pass itself
// after N CLRs (for every feasible N), optionally making the partial CLRs
// durable, then crashes and recovers again.  The paper's CLR argument
// (§3.6.2: "to avoid undoing an update repeatedly should crashes occur
// during recovery") is exactly what this exercises.
func TestCrashDuringRecovery(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		cfg := defaultCfg(seed)
		cfg.DelegationRate = 0.25
		trace := Generate(cfg)
		cut := (len(trace) * 3) / 4
		for _, flushPartial := range []bool{false, true} {
			for failAfter := 1; failAfter <= 6; failAfter++ {
				target := newCoreTarget(t)
				rep := NewReplayer(target, trace)
				oracle := NewOracle()
				for _, a := range trace[:cut] {
					if err := oracle.Apply(a); err != nil {
						t.Fatal(err)
					}
				}
				if err := rep.RunTo(cut); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				losers := rep.LiveSlots()
				if err := target.FlushLog(); err != nil {
					t.Fatal(err)
				}
				if err := target.Crash(); err != nil {
					t.Fatal(err)
				}
				target.SetRecoveryFailpoint(failAfter)
				err := target.Recover()
				if err == nil {
					// Fewer than failAfter CLRs were needed: the
					// failpoint never fired and recovery finished.
					target.SetRecoveryFailpoint(0)
				} else {
					if !errors.Is(err, core.ErrInjectedRecoveryFailure) {
						t.Fatalf("seed %d failAfter %d: %v", seed, failAfter, err)
					}
					if flushPartial {
						// Worst case: the partial recovery's CLRs
						// reached stable storage before the second
						// crash.
						if err := target.FlushLog(); err != nil {
							t.Fatal(err)
						}
					}
					if err := target.Crash(); err != nil {
						t.Fatal(err)
					}
					if err := target.Recover(); err != nil {
						t.Fatalf("seed %d failAfter %d: second recovery: %v", seed, failAfter, err)
					}
				}
				oc := NewOracle()
				for _, a := range trace[:cut] {
					if err := oc.Apply(a); err != nil {
						t.Fatal(err)
					}
				}
				oc.CrashRecover(losers)
				checkAgainstOracle(t, seed, target, oc, cfg)
			}
		}
	}
}
