package sim

import (
	"fmt"
	"sort"

	"ariesrh/internal/core"
	"ariesrh/internal/rewrite"
	"ariesrh/internal/wal"
)

// Target abstracts the engines a trace can be replayed against: the
// ARIES/RH engine and the eager/lazy rewriting baselines all implement it
// (via the adapters below).  EOS is excluded: its deferred-apply
// visibility gives histories a different — also correct — final state, so
// it is validated by its own unit tests instead of differentially.
type Target interface {
	Begin() (wal.TxID, error)
	Update(tx wal.TxID, obj wal.ObjectID, val []byte) error
	Delegate(tor, tee wal.TxID, obj wal.ObjectID) error
	Commit(tx wal.TxID) error
	Abort(tx wal.TxID) error
	FlushLog() error
	Crash() error
	Recover() error
	ReadObject(obj wal.ObjectID) ([]byte, bool, error)
}

// CoreTarget adapts the ARIES/RH engine.
type CoreTarget struct{ *core.Engine }

// FlushLog flushes the whole log.
func (t CoreTarget) FlushLog() error { return t.Log().Flush(t.Log().Head()) }

// RewriteTarget adapts a rewriting baseline engine.
type RewriteTarget struct{ *rewrite.Engine }

// FlushLog flushes the whole log.
func (t RewriteTarget) FlushLog() error { return t.Log().Flush(t.Log().Head()) }

// Incrementer is implemented by targets with commutative counters.
type Incrementer interface {
	Increment(tx wal.TxID, obj wal.ObjectID, delta int64) (int64, error)
}

// PartialRollbacker is implemented by targets that support savepoints
// (currently the ARIES/RH engine); traces with savepoint actions can only
// be replayed against such targets.
type PartialRollbacker interface {
	Savepoint(tx wal.TxID) (core.Savepoint, error)
	RollbackTo(sp core.Savepoint) error
}

// Replayer drives a trace against a Target, tracking the slot → TxID
// mapping and which slots are live.
type Replayer struct {
	target Target
	ids    map[int]wal.TxID
	live   map[int]bool
	sps    map[int]core.Savepoint
	pos    int
	trace  []Action
}

// NewReplayer prepares a replay of trace against target.
func NewReplayer(target Target, trace []Action) *Replayer {
	return &Replayer{
		target: target,
		ids:    make(map[int]wal.TxID),
		live:   make(map[int]bool),
		sps:    make(map[int]core.Savepoint),
		trace:  trace,
	}
}

// Step applies the next action; it returns false when the trace is done.
func (r *Replayer) Step() (bool, error) {
	if r.pos >= len(r.trace) {
		return false, nil
	}
	a := r.trace[r.pos]
	r.pos++
	switch a.Kind {
	case ActBegin:
		id, err := r.target.Begin()
		if err != nil {
			return false, err
		}
		r.ids[a.Tx] = id
		r.live[a.Tx] = true
	case ActUpdate:
		if err := r.target.Update(r.ids[a.Tx], a.Obj, a.Val); err != nil {
			return false, fmt.Errorf("step %d %v: %w", r.pos-1, a.Kind, err)
		}
	case ActDelegate:
		if err := r.target.Delegate(r.ids[a.Tx], r.ids[a.Tee], a.Obj); err != nil {
			return false, fmt.Errorf("step %d %v: %w", r.pos-1, a.Kind, err)
		}
	case ActCommit:
		if err := r.target.Commit(r.ids[a.Tx]); err != nil {
			return false, fmt.Errorf("step %d %v: %w", r.pos-1, a.Kind, err)
		}
		delete(r.live, a.Tx)
	case ActAbort:
		if err := r.target.Abort(r.ids[a.Tx]); err != nil {
			return false, fmt.Errorf("step %d %v: %w", r.pos-1, a.Kind, err)
		}
		delete(r.live, a.Tx)
	case ActSavepoint:
		pr, ok := r.target.(PartialRollbacker)
		if !ok {
			return false, fmt.Errorf("step %d: target does not support savepoints", r.pos-1)
		}
		sp, err := pr.Savepoint(r.ids[a.Tx])
		if err != nil {
			return false, fmt.Errorf("step %d %v: %w", r.pos-1, a.Kind, err)
		}
		r.sps[a.Tx] = sp
	case ActRollback:
		pr, ok := r.target.(PartialRollbacker)
		if !ok {
			return false, fmt.Errorf("step %d: target does not support savepoints", r.pos-1)
		}
		if err := pr.RollbackTo(r.sps[a.Tx]); err != nil {
			return false, fmt.Errorf("step %d %v: %w", r.pos-1, a.Kind, err)
		}
		delete(r.sps, a.Tx)
	case ActIncrement:
		inc, ok := r.target.(Incrementer)
		if !ok {
			return false, fmt.Errorf("step %d: target does not support increments", r.pos-1)
		}
		if _, err := inc.Increment(r.ids[a.Tx], a.Obj, a.Delta); err != nil {
			return false, fmt.Errorf("step %d %v: %w", r.pos-1, a.Kind, err)
		}
	default:
		return false, fmt.Errorf("sim: unknown action %v", a.Kind)
	}
	return true, nil
}

// Pos returns the index of the next action Step would apply — after a
// failed Step, the index of the action that failed plus one.
func (r *Replayer) Pos() int { return r.pos }

// IDs returns a copy of the slot → TxID assignments made so far.  Crash
// harnesses use it to classify transactions as winners or losers from
// the durable log, which names transactions by TxID, not slot.
func (r *Replayer) IDs() map[int]wal.TxID {
	out := make(map[int]wal.TxID, len(r.ids))
	for s, id := range r.ids {
		out[s] = id
	}
	return out
}

// RunTo replays actions up to (not including) index stop, or the whole
// trace if stop < 0.
func (r *Replayer) RunTo(stop int) error {
	for r.pos < len(r.trace) {
		if stop >= 0 && r.pos >= stop {
			return nil
		}
		if _, err := r.Step(); err != nil {
			return err
		}
	}
	return nil
}

// LiveSlots returns the slots of transactions currently active, sorted.
func (r *Replayer) LiveSlots() []int {
	var out []int
	for s := range r.live {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// CrashRecover flushes the log (so the oracle's view of what is durable
// matches the engine's), crashes, and recovers.  All live transactions
// become losers.
func (r *Replayer) CrashRecover() error {
	if err := r.target.FlushLog(); err != nil {
		return err
	}
	if err := r.target.Crash(); err != nil {
		return err
	}
	if err := r.target.Recover(); err != nil {
		return err
	}
	r.live = make(map[int]bool)
	return nil
}

// AbortLive aborts every still-active transaction in slot order (used to
// settle a trace without a crash).  The order is deterministic because
// physical undo of co-held objects is order-sensitive; the oracle must
// settle in the same order.
func (r *Replayer) AbortLive() error {
	for _, s := range r.LiveSlots() {
		if err := r.target.Abort(r.ids[s]); err != nil {
			return err
		}
		delete(r.live, s)
	}
	return nil
}
