package sim

import (
	"fmt"

	"ariesrh/internal/wal"
)

// Oracle computes the expected database state for a trace by direct
// application of the delegation semantics (§2.1.2): every update has a
// responsible transaction — initially its invoker, changed by delegation —
// and an update survives exactly when the transaction responsible for it
// at termination time committed.  Undo restores before-images in reverse
// history order, matching in-place UNDO/REDO engines.
//
// The oracle is deliberately log-free and scope-free: it is a different
// formulation of the same semantics, so agreement with the engines is
// meaningful evidence of correctness.
type Oracle struct {
	values   map[wal.ObjectID][]byte
	counters map[wal.ObjectID]int64
	ops      []*oracleOp
	// savepoints maps a transaction slot to the ops-index recorded at
	// its (single outstanding) savepoint.
	savepoints map[int]int
}

type oracleOp struct {
	idx         int
	responsible int
	obj         wal.ObjectID
	before      []byte
	dead        bool
	// isDelta marks a commutative increment; undo subtracts delta
	// instead of restoring before.
	isDelta bool
	delta   int64
}

// NewOracle returns an oracle over an empty database.
func NewOracle() *Oracle {
	return &Oracle{
		values:     make(map[wal.ObjectID][]byte),
		counters:   make(map[wal.ObjectID]int64),
		savepoints: make(map[int]int),
	}
}

// Apply advances the oracle by one trace action.
func (o *Oracle) Apply(a Action) error {
	switch a.Kind {
	case ActBegin:
	case ActUpdate:
		before := append([]byte(nil), o.values[a.Obj]...)
		o.values[a.Obj] = append([]byte(nil), a.Val...)
		o.ops = append(o.ops, &oracleOp{
			idx:         len(o.ops),
			responsible: a.Tx,
			obj:         a.Obj,
			before:      before,
		})
	case ActIncrement:
		o.counters[a.Obj] += a.Delta
		o.ops = append(o.ops, &oracleOp{
			idx:         len(o.ops),
			responsible: a.Tx,
			obj:         a.Obj,
			isDelta:     true,
			delta:       a.Delta,
		})
	case ActDelegate:
		for _, op := range o.ops {
			if !op.dead && op.responsible == a.Tx && op.obj == a.Obj {
				op.responsible = a.Tee
			}
		}
	case ActCommit:
		for _, op := range o.ops {
			if !op.dead && op.responsible == a.Tx {
				op.dead = true // permanent
			}
		}
		delete(o.savepoints, a.Tx)
	case ActAbort:
		o.undoResponsible(map[int]bool{a.Tx: true})
		delete(o.savepoints, a.Tx)
	case ActSavepoint:
		o.savepoints[a.Tx] = len(o.ops)
	case ActRollback:
		mark, ok := o.savepoints[a.Tx]
		if !ok {
			return fmt.Errorf("sim: rollback without savepoint for slot %d", a.Tx)
		}
		// Undo, in reverse order, every live update the transaction is
		// responsible for that postdates the savepoint.
		for i := len(o.ops) - 1; i >= mark; i-- {
			op := o.ops[i]
			if op.dead || op.responsible != a.Tx {
				continue
			}
			o.undoOp(op)
		}
		delete(o.savepoints, a.Tx)
	default:
		return fmt.Errorf("sim: unknown action %v", a.Kind)
	}
	return nil
}

// undoResponsible restores before-images, in reverse history order, for
// every live update whose responsible transaction is in losers.
func (o *Oracle) undoResponsible(losers map[int]bool) {
	for i := len(o.ops) - 1; i >= 0; i-- {
		op := o.ops[i]
		if op.dead || !losers[op.responsible] {
			continue
		}
		o.undoOp(op)
	}
}

// undoOp reverses one op: physical image restore or logical delta.
func (o *Oracle) undoOp(op *oracleOp) {
	if op.isDelta {
		o.counters[op.obj] -= op.delta
	} else {
		o.values[op.obj] = append([]byte(nil), op.before...)
	}
	op.dead = true
}

// CrashRecover applies crash semantics: every transaction in losers (the
// transactions still active at the crash) has the updates it is
// responsible for undone; everything else is already permanent.
func (o *Oracle) CrashRecover(losers []int) {
	set := make(map[int]bool, len(losers))
	for _, s := range losers {
		set[s] = true
	}
	o.undoResponsible(set)
}

// Value returns the expected value of obj ("" and false when the object
// was never durably written).
func (o *Oracle) Value(obj wal.ObjectID) ([]byte, bool) {
	v, ok := o.values[obj]
	if !ok || len(v) == 0 {
		return nil, false
	}
	return v, true
}

// Counter returns the expected value of the counter obj.
func (o *Oracle) Counter(obj wal.ObjectID) int64 { return o.counters[obj] }

// Objects returns every object the oracle has seen.
func (o *Oracle) Objects() []wal.ObjectID {
	out := make([]wal.ObjectID, 0, len(o.values))
	for obj := range o.values {
		out = append(out, obj)
	}
	return out
}
