// Package ariesrh is the public API of the ARIES/RH library: an
// UNDO/REDO transaction manager with delegation, reproducing "Delegation:
// Efficiently Rewriting History" (Pedregal Martin & Ramamritham,
// ICDE 1997).
//
// Delegation — Tx.Delegate — transfers responsibility for a transaction's
// updates on an object to another transaction.  The delegatee's commit
// makes the delegated updates permanent and its abort obliterates them,
// regardless of what happens to the transaction that performed them.
// Delegation is the building block for extended transaction models; the
// companion package ariesrh/etm synthesizes nested transactions,
// split/join transactions, reporting transactions and co-transactions
// from it.
//
// # Quick start
//
//	db, _ := ariesrh.Open()
//	t1, _ := db.Begin()
//	t2, _ := db.Begin()
//	t1.Update(1, []byte("tentative result"))
//	t1.Delegate(t2, 1)   // t2 is now responsible for the update
//	t1.Abort()           // does NOT undo the delegated update
//	t2.Commit()          // makes it permanent
//
// The database is crash-safe: DB.Crash simulates a failure (losing all
// volatile state) and DB.Recover replays the write-ahead log — a single
// forward analysis+redo pass and a backward pass that undoes exactly the
// updates whose final delegatee did not commit, without ever rewriting
// the log.
package ariesrh

import (
	"errors"
	"path/filepath"

	"ariesrh/internal/core"
	"ariesrh/internal/obs"
	"ariesrh/internal/shard"
	"ariesrh/internal/storage"
	"ariesrh/internal/wal"
)

// ObjectID identifies a database object (the unit of update and
// delegation).
type ObjectID = wal.ObjectID

// TxID identifies a transaction.
type TxID = wal.TxID

// MaxValueSize is the largest value an object can hold, in bytes.
const MaxValueSize = storage.MaxValueSize

// Errors surfaced by the API (in addition to the lock manager's deadlock
// error, which callers should treat as "abort and retry").
var (
	// ErrTxDone is returned for operations on a committed or aborted Tx.
	ErrTxDone = errors.New("ariesrh: transaction already terminated")
	// ErrNotResponsible is returned when delegating an object the
	// transaction holds no updates on.
	ErrNotResponsible = core.ErrNotResponsible
	// ErrTxGone is returned for operations on a transaction the engine
	// no longer knows — typically one terminated behind the handle's
	// back by a dependency cascade or a crash.
	ErrTxGone = core.ErrNoSuchTxn
	// ErrCrashed is returned between Crash and Recover.
	ErrCrashed = core.ErrCrashed
	// ErrRecovering is returned by mutating operations while a parallel
	// recovery pipeline (Options.ParallelRecovery) is still running.
	// Reads stay available — each waits only for its own object's redo
	// chain and undo gate — but writes must wait for the whole pipeline
	// so they can never interleave with redo or the backward pass.  Retry
	// after WaitRecovered returns (or when Health stops reporting
	// StateRecovering).
	ErrRecovering = core.ErrRecovering
	// ErrDegraded is returned (wrapped) by mutating operations after a
	// persistent log-device failure moved the database to read-only
	// degraded mode.  Reads and Abort still work; Crash + Recover with a
	// healthy device is the repair action.  See DB.Health.
	ErrDegraded = core.ErrDegraded
	// ErrCommitAborted is returned by Commit when an early-lock-release
	// commit (Options.EarlyLockRelease) could not be made durable: the
	// locks were released at commit-record append, so the transaction
	// cannot go back to being active — it has been rolled back, along
	// with every transaction that violated its early-released locks.
	// The Tx handle is terminated.  Wraps the device error.
	ErrCommitAborted = core.ErrCommitAborted
	// ErrSharded is returned by operations a sharded database
	// (Options.Shards >= 2) does not support: per-LSN introspection
	// (ResponsibleFor, MinRequiredLSN — LSNs are per-shard), savepoints,
	// dependencies, permits, DelegateAll, backup and replication.  The
	// core transactional surface — Read, Update, Increment, Delegate,
	// Commit, Abort, Crash/Recover, Checkpoint, Metrics — is fully
	// supported.
	ErrSharded = errors.New("ariesrh: operation not supported on a sharded database")
	// ErrInDoubt is returned (wrapped around the device error) by a
	// sharded Tx.Commit when the coordinator shard's decision force
	// failed: the commit record may or may not be durable, so the global
	// outcome is unknown.  No branch is aborted — each stays prepared,
	// holding its locks, until the next Recover settles them all from
	// the coordinator's durable log (commit if the record made it to the
	// device, presumed abort otherwise).
	ErrInDoubt = shard.ErrInDoubt
)

// GroupCommitMode selects how Commit forces the log (re-exported from the
// engine).
type GroupCommitMode = core.GroupCommitMode

// Group-commit modes.
const (
	// GroupCommitAuto (the zero value) enables group commit: concurrent
	// committers share one device sync per batch and never hold the
	// engine latch across it.
	GroupCommitAuto = core.GroupCommitAuto
	// GroupCommitOn enables group commit explicitly.
	GroupCommitOn = core.GroupCommitOn
	// GroupCommitOff makes every commit perform its own synchronous log
	// force under the engine latch — deterministic flush timing for
	// crash tests.
	GroupCommitOff = core.GroupCommitOff
)

// Options configures Open.
type Options struct {
	// Dir, when non-empty, makes the database file-backed: the log,
	// pages and master record live under this directory.  Empty means
	// fully in-memory (with simulated stable storage — Crash/Recover
	// still behave faithfully).
	Dir string
	// PoolSize is the buffer-pool capacity in pages (default 128).
	PoolSize int
	// GroupCommit selects commit-time log forcing; the zero value
	// enables coalesced group commit.
	GroupCommit GroupCommitMode
	// FaultDir, when non-nil, is used as the write-ahead log's stable
	// directory in place of the default — typically a fault.Dir (or any
	// other wal.Dir implementation) injecting device faults, letting
	// torture harnesses and tests drive crash schedules through the
	// public API.  Mutually exclusive with Dir, which opens its own log
	// directory.
	FaultDir wal.Dir
	// EarlyLockRelease enables controlled lock violation: Commit
	// releases the transaction's locks at commit-record append and
	// defers only the durability ack to the group flusher, trading lock
	// hold time for commit-dependency tracking.  The commit ack still
	// implies durability; see core.Options.EarlyLockRelease for the full
	// crash contract.  Requires group commit (ignored with
	// GroupCommitOff).
	EarlyLockRelease bool
	// Shards, when >= 2, opens a sharded database: that many
	// independent engines — each with its own write-ahead log, group
	// flusher, lock manager and buffer pool — behind an object→shard
	// router.  Transactions that touch one shard commit through that
	// engine's ordinary path, untouched; transactions that write on
	// several run a two-phase commit logged on the participant shards'
	// own logs (the coordinator's forced commit record is the global
	// decision; no decision durable means abort), and Tx.Delegate
	// crosses shards via paired delegate-out/delegate-in records so
	// undo stays local to each shard.  A nil Commit error means the
	// decision is on stable storage and the transaction survives any
	// crash of any subset of shards; a Commit error wrapping ErrInDoubt
	// means the decision force failed and the outcome stays unknown
	// until the next Recover.  0 and 1 mean unsharded — the
	// single-engine database, byte-for-byte the same behaviour as
	// before the option existed.  See ErrSharded for the operations a
	// sharded database rejects.
	Shards int
	// ShardRouter overrides the object→shard mapping (nil means a
	// stable Fibonacci hash).  Only consulted when Shards >= 2.  The
	// router must be a pure function of (object, shard count), stable
	// across restarts: recovery replays each shard's log independently
	// and a moved object would resurrect on the wrong shard.
	ShardRouter ShardRouter
	// ParallelRecovery makes Recover (and a reopened database's implicit
	// recovery) run as the instant-restart pipeline: a parallel scan of
	// the log segments builds per-object redo chains, redo happens on
	// demand — a read during recovery redoes just its object's chain and
	// returns — and the backward undo sweep runs concurrently, gated per
	// record on the redo it depends on.  Recover returns with the
	// pipeline in flight; the database reports StateRecovering, serves
	// reads, and rejects writes with ErrRecovering until WaitRecovered
	// returns nil.
	//
	// Crash contract: unchanged.  The recovered state is identical to
	// sequential recovery's, a read is served only after its object's
	// redo chain and every loser cluster covering it are applied, and a
	// pipeline failure returns the database to StateCrashed with the
	// error reported by WaitRecovered; Recover may then be retried.
	ParallelRecovery bool
}

// ShardRouter maps objects to shards for a sharded database
// (re-exported from internal/shard).  Route(obj, shards) must return a
// value in [0, shards) and be a pure, restart-stable function of its
// arguments.
type ShardRouter = shard.Router

// DB is a handle to an ARIES/RH database.
type DB struct {
	eng *core.Engine
	sh  *shard.DB // non-nil when opened with Options.Shards >= 2 (eng is nil then)
	dir string    // non-empty for file-backed databases
}

// Open creates or reopens a database.  With no options the database is
// in-memory; pass Options{Dir: path} for file-backed operation.  If the
// stores contain state from a previous incarnation, recovery runs before
// Open returns.
func Open(opts ...Options) (*DB, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.Shards >= 2 {
		if o.FaultDir != nil {
			return nil, errors.New("ariesrh: Options.FaultDir is not supported with Shards >= 2 (per-shard fault injection lives in internal/shard.Options.LogDirs)")
		}
		sh, err := shard.Open(shard.Options{
			Shards:           o.Shards,
			Dir:              o.Dir,
			PoolSize:         o.PoolSize,
			GroupCommit:      o.GroupCommit,
			EarlyLockRelease: o.EarlyLockRelease,
			ParallelRecovery: o.ParallelRecovery,
			Router:           o.ShardRouter,
		})
		if err != nil {
			return nil, err
		}
		return &DB{sh: sh, dir: o.Dir}, nil
	}
	engineOpts := core.Options{
		PoolSize:         o.PoolSize,
		GroupCommit:      o.GroupCommit,
		EarlyLockRelease: o.EarlyLockRelease,
		ParallelRecovery: o.ParallelRecovery,
	}
	if o.FaultDir != nil {
		if o.Dir != "" {
			return nil, errors.New("ariesrh: Options.Dir and Options.FaultDir are mutually exclusive")
		}
		engineOpts.LogDir = o.FaultDir
	}
	// cleanup releases file handles if engine construction fails; on
	// success the engine owns them and DB.Close goes through the engine.
	cleanup := func() {}
	if o.Dir != "" {
		logDir, err := wal.OpenFileDir(filepath.Join(o.Dir, "wal"))
		if err != nil {
			return nil, err
		}
		master, err := wal.OpenFileStore(filepath.Join(o.Dir, "master"))
		if err != nil {
			logDir.Close()
			return nil, err
		}
		disk, err := storage.OpenFileDisk(filepath.Join(o.Dir, "pages.db"))
		if err != nil {
			logDir.Close()
			master.Close()
			return nil, err
		}
		engineOpts.LogDir = logDir
		engineOpts.MasterStore = master
		engineOpts.Disk = disk
		cleanup = func() {
			logDir.Close()
			master.Close()
			disk.Close()
		}
	}
	eng, err := core.New(engineOpts)
	if err != nil {
		cleanup()
		return nil, err
	}
	return &DB{eng: eng, dir: o.Dir}, nil
}

// Begin starts a transaction.  On a sharded database the transaction
// is global: it lazily opens a local branch on each shard it touches
// and commits through the single-shard fast path or two-phase commit
// as appropriate.
func (db *DB) Begin() (*Tx, error) {
	if db.sh != nil {
		stx, err := db.sh.Begin()
		if err != nil {
			return nil, err
		}
		return &Tx{db: db, stx: stx}, nil
	}
	id, err := db.eng.Begin()
	if err != nil {
		return nil, err
	}
	return &Tx{db: db, id: id}, nil
}

// Checkpoint takes a fuzzy checkpoint, bounding the work of the next
// recovery.  Sharded databases checkpoint every shard (per-shard
// checkpoints need no mutual atomicity: each shard's checkpoint
// carries that shard's prepared transactions and retained decisions).
func (db *DB) Checkpoint() error {
	if db.sh != nil {
		return db.sh.Checkpoint()
	}
	return db.eng.Checkpoint()
}

// Crash simulates a failure: the buffer pool, lock table, transaction
// table, delegation state and unflushed log tail are lost.  All live Tx
// handles become invalid.  Call Recover before issuing new work.  Crash
// also clears degraded mode — the restart is the repair action; if the
// device is still broken, Recover fails instead.  Sharded databases
// crash every shard (a whole-cluster failure).
func (db *DB) Crash() error {
	if db.sh != nil {
		return db.sh.Crash()
	}
	return db.eng.Crash()
}

// Recover replays the log after a Crash: one forward analysis+redo pass,
// then a backward pass undoing exactly the updates whose final delegatee
// did not commit.  Recovery is idempotent — a crash during Recover is
// handled by running Recover again — and tolerates a torn record at the
// log's tail (the expected signature of a crash mid-flush).
//
// With Options.ParallelRecovery, Recover returns once the pipeline is
// started: reads are served immediately (each triggering on-demand redo
// of its own object), writes return ErrRecovering until WaitRecovered.
//
// Sharded databases recover every shard concurrently, then resolve
// in-doubt two-phase participants from the coordinator shard's durable
// decision (presumed abort when none exists); a nil return means every
// shard is writable and no transaction is in doubt.
func (db *DB) Recover() error {
	if db.sh != nil {
		return db.sh.Recover()
	}
	return db.eng.Recover()
}

// WaitRecovered blocks until the in-flight parallel recovery (or
// promotion) pipeline completes and returns its outcome: nil once the
// database is writable, or the pipeline's error — after which the
// database is back in StateCrashed and Recover may be retried.  Without
// Options.ParallelRecovery (or with no recovery running) it returns
// immediately: nil when healthy, ErrCrashed between Crash and Recover.
func (db *DB) WaitRecovered() error {
	if db.sh != nil {
		return db.sh.WaitRecovered()
	}
	return db.eng.WaitRecovered()
}

// HealthState enumerates DB availability states (re-exported from the
// engine).
type HealthState = core.HealthState

// Health states.
const (
	// StateHealthy: all operations available.
	StateHealthy = core.StateHealthy
	// StateDegraded: a persistent log-device failure was detected after
	// the WAL's retry budget was spent.  Reads and Abort remain
	// available; every other mutation returns ErrDegraded.  No commit
	// was ever acknowledged without its records being durable.
	StateDegraded = core.StateDegraded
	// StateCrashed: between Crash and Recover.
	StateCrashed = core.StateCrashed
	// StateRecovering: a parallel recovery pipeline
	// (Options.ParallelRecovery) is running.  Reads are served — each
	// gated on its own object's redo and undo — while mutations return
	// ErrRecovering until WaitRecovered.
	StateRecovering = core.StateRecovering
)

// Health describes the database's availability: its state and, when
// degraded, the device error that caused it.
type Health = core.Health

// Health returns the database's availability state.  It never touches
// the device and is answerable in every state.  Sharded databases
// report the worst state across shards (any cross-shard transaction
// may need any shard).
func (db *DB) Health() Health {
	if db.sh != nil {
		return db.sh.Health()
	}
	return db.eng.Health()
}

// ReadCommitted returns the current stable/buffered value of obj without
// any transactional context.  Objects that were never written — or whose
// writes were all undone, restoring the initial empty value — return
// ok=false.
func (db *DB) ReadCommitted(obj ObjectID) (val []byte, ok bool, err error) {
	if db.sh != nil {
		return db.sh.ReadCommitted(obj)
	}
	v, present, err := db.eng.ReadObject(obj)
	if err != nil || !present || len(v) == 0 {
		return nil, false, err
	}
	return v, true, nil
}

// ResponsibleFor returns the transaction currently responsible for the
// update logged at lsn — the paper's ResponsibleTr, the lens through
// which history appears rewritten.  Sharded databases return
// ErrSharded: LSNs are per-shard coordinates.
func (db *DB) ResponsibleFor(lsn uint64) (TxID, error) {
	if db.sh != nil {
		return 0, ErrSharded
	}
	return db.eng.ResponsibleFor(wal.LSN(lsn))
}

// Stats returns engine counters (updates, delegations, recovery work...).
// Sharded databases return the sum across shards.
func (db *DB) Stats() core.Stats {
	if db.sh != nil {
		var out core.Stats
		for i := 0; i < db.sh.Shards(); i++ {
			s := db.sh.Engine(i).Stats()
			out.Begins += s.Begins
			out.Updates += s.Updates
			out.Reads += s.Reads
			out.Delegations += s.Delegations
			out.Commits += s.Commits
			out.Aborts += s.Aborts
			out.CLRs += s.CLRs
			out.Checkpoints += s.Checkpoints
			out.RecForwardRecords += s.RecForwardRecords
			out.RecRedone += s.RecRedone
			out.RecUndone += s.RecUndone
			out.RecBackwardVisited += s.RecBackwardVisited
			out.RecBackwardSkipped += s.RecBackwardSkipped
			out.RecCLRs += s.RecCLRs
			out.RecLosers += s.RecLosers
			out.RecWinners += s.RecWinners
		}
		return out
	}
	return db.eng.Stats()
}

// MetricsSnapshot is a point-in-time copy of every metric in the
// database's registry (re-exported from internal/obs).  Subtract two
// snapshots with Sub for a per-interval delta; Format renders one for
// humans.
type MetricsSnapshot = obs.Snapshot

// Event is one structured trace event delivered to the hook installed by
// SetEventHook (re-exported from internal/obs).
type Event = obs.Event

// RecoveryTrace describes the most recent recovery run: per-phase
// durations, records scanned and redone, backward-sweep visit counts,
// clusters swept and CLRs written.
type RecoveryTrace = core.RecoveryTrace

// Metrics returns a snapshot of the full metric registry: engine
// operation counters and latency histograms, WAL append/flush/scan
// counters (including group-commit coalescing), buffer-pool
// hit/miss/eviction counters and lock-manager wait counters.
//
// Sharded databases return one cluster-wide snapshot: router series
// ("router.*" — commit routing, cross-shard delegations, two-phase
// latency) under their own names, every engine series both aggregated
// under its base name (counters and gauges summed, histograms merged)
// and broken down per shard under a "shard.<i>." prefix.
func (db *DB) Metrics() MetricsSnapshot {
	if db.sh != nil {
		return db.sh.Metrics()
	}
	return db.eng.Metrics()
}

// SetEventHook installs fn to receive structured trace events
// (transaction terminations, delegations, group flushes, undo visits,
// recovery completion); nil uninstalls.  The hook runs synchronously on
// the emitting goroutine, often with internal latches held: it must be
// fast and must not call back into the database.
func (db *DB) SetEventHook(fn func(Event)) {
	if db.sh != nil {
		db.sh.SetEventHook(fn)
		return
	}
	db.eng.SetEventHook(fn)
}

// LastRecoveryTrace returns the trace of the most recent Recover (zero
// value if recovery has not run).  Sharded databases return the merged
// cluster view — counts summed across shards, durations the maximum
// over shards, since shard recoveries run concurrently.
func (db *DB) LastRecoveryTrace() RecoveryTrace {
	if db.sh != nil {
		return db.sh.LastRecoveryTrace()
	}
	return db.eng.LastRecoveryTrace()
}

// Engine exposes the underlying engine for tools and benchmarks; nil
// for a sharded database (use Shards and internal/shard directly from
// in-repo tools).
func (db *DB) Engine() *core.Engine { return db.eng }

// Shards returns the shard count: 1 for an unsharded database.
func (db *DB) Shards() int {
	if db.sh != nil {
		return db.sh.Shards()
	}
	return 1
}

// Close flushes everything and releases file handles.
func (db *DB) Close() error {
	if db.sh != nil {
		return db.sh.Close()
	}
	return db.eng.Close()
}

// Tx is a handle to one transaction.  A Tx is not safe for concurrent use
// by multiple goroutines; different Tx values are.
//
// On a sharded database a Tx is a global transaction: operations route
// to each object's home shard, opening a local branch there on first
// touch, and Commit runs the single-shard fast path or two-phase
// commit depending on how many shards the transaction wrote on.
type Tx struct {
	db   *DB
	id   TxID
	stx  *shard.Txn // non-nil on a sharded database (id is 0 then)
	done bool
}

// ID returns the transaction's identifier.  On a sharded database the
// single TxID is meaningless (each branch has its own local id); ID
// returns 0 there — use GID instead.
func (tx *Tx) ID() TxID { return tx.id }

// GID returns the transaction's cluster-wide identifier on a sharded
// database (0 on an unsharded one, where ID is the identifier).
func (tx *Tx) GID() uint64 {
	if tx.stx != nil {
		return tx.stx.GID()
	}
	return 0
}

// Read returns tx's view of obj under a shared lock.
func (tx *Tx) Read(obj ObjectID) ([]byte, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	if tx.stx != nil {
		return tx.stx.Read(obj)
	}
	return tx.db.eng.Read(tx.id, obj)
}

// Update sets obj to val under an exclusive lock, logging before/after
// images for recovery.  The update record is appended but not forced:
// durability arrives with the commit of whichever transaction is finally
// responsible for the update (the WAL rule guarantees the record reaches
// the device before the page does).
func (tx *Tx) Update(obj ObjectID, val []byte) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.stx != nil {
		return tx.stx.Update(obj, val)
	}
	return tx.db.eng.Update(tx.id, obj, val)
}

// Delegate transfers responsibility for tx's updates on obj to the
// transaction to.  Afterwards, to's commit or abort decides the fate of
// those updates; tx may keep operating on the object.
//
// On a sharded database the transfer happens between the two global
// transactions' local branches on obj's home shard — undo never
// crosses a shard boundary — with paired delegate-out/delegate-in
// records when the delegatee coordinates elsewhere.  Durability rides
// the delegatee's eventual commit, exactly like an ordinary update.
func (tx *Tx) Delegate(to *Tx, obj ObjectID) error {
	if tx.done {
		return ErrTxDone
	}
	if to.done {
		return ErrTxDone
	}
	if tx.stx != nil {
		return tx.stx.Delegate(to.stx, obj)
	}
	return tx.db.eng.Delegate(tx.id, to.id, obj)
}

// DelegateAll delegates every object in tx's object list to to — the
// "delegate(t2, t1)" form used by join and by nested-transaction commit.
// DelegateAll returns ErrSharded on a sharded database (delegate the
// objects individually).
func (tx *Tx) DelegateAll(to *Tx) error {
	if tx.done {
		return ErrTxDone
	}
	if to.done {
		return ErrTxDone
	}
	if tx.stx != nil {
		return ErrSharded
	}
	return tx.db.eng.DelegateAll(tx.id, to.id)
}

// Increment adds delta to the counter obj and returns the new value.
// Increments commute: concurrent transactions may increment the same
// counter without blocking each other (they take compatible Increment
// locks), and undo removes exactly the aborting transaction's deltas.
// Counters are 8-byte integers; Increment on an object holding other data
// returns an error.
func (tx *Tx) Increment(obj ObjectID, delta int64) (int64, error) {
	if tx.done {
		return 0, ErrTxDone
	}
	if tx.stx != nil {
		return tx.stx.Increment(obj, delta)
	}
	return tx.db.eng.Increment(tx.id, obj, delta)
}

// ReadCounter returns tx's view of the counter obj under a shared lock.
func (tx *Tx) ReadCounter(obj ObjectID) (int64, error) {
	if tx.done {
		return 0, ErrTxDone
	}
	if tx.stx != nil {
		return tx.stx.ReadCounter(obj)
	}
	return tx.db.eng.ReadCounter(tx.id, obj)
}

// CounterValue reads the committed/buffered counter value without any
// transactional context.
func (db *DB) CounterValue(obj ObjectID) (int64, error) {
	if db.sh != nil {
		return db.sh.CounterValue(obj)
	}
	return db.eng.CounterValue(obj)
}

// DependencyKind selects the ACTA dependency formed by FormDependency.
type DependencyKind = core.DependencyKind

// Dependency kinds (re-exported from the engine).
const (
	// AbortDependency: tx aborts if the depended-on transaction aborts.
	AbortDependency = core.AbortDependency
	// CommitDependency: tx may commit only after the depended-on
	// transaction has terminated.
	CommitDependency = core.CommitDependency
)

// Dependency errors (re-exported from the engine).
var (
	// ErrDependencyPending is returned by Commit while a commit
	// dependency's target is still active.
	ErrDependencyPending = core.ErrDependencyPending
	// ErrDependencyCycle is returned by FormDependency when the new edge
	// would close a cycle.
	ErrDependencyCycle = core.ErrDependencyCycle
)

// FormDependency makes tx depend on the transaction `on` — ASSET's third
// primitive.  With AbortDependency, `on`'s abort cascades to tx; with
// CommitDependency, tx's Commit fails with ErrDependencyPending until `on`
// has terminated.
func (tx *Tx) FormDependency(on *Tx, kind DependencyKind) error {
	if tx.done || on.done {
		return ErrTxDone
	}
	if tx.stx != nil {
		return ErrSharded
	}
	return tx.db.eng.FormDependency(tx.id, on.id, kind)
}

// Permit grants the transaction to access to tx's lock on obj without
// transferring responsibility — ASSET's permit primitive.  Use it to let
// a subtransaction read its parent's uncommitted data.
func (tx *Tx) Permit(to *Tx, obj ObjectID) error {
	if tx.done || to.done {
		return ErrTxDone
	}
	if tx.stx != nil {
		return ErrSharded
	}
	return tx.db.eng.Permit(tx.id, to.id, obj)
}

// Objects returns the objects tx is currently responsible for (its
// Ob_List in the paper's terms), sorted.  ErrSharded on a sharded
// database.
func (tx *Tx) Objects() ([]ObjectID, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	if tx.stx != nil {
		return nil, ErrSharded
	}
	return tx.db.eng.ObjectsOf(tx.id)
}

// DB returns the database this transaction runs against.
func (tx *Tx) DB() *DB { return tx.db }

// Commit makes every update tx is responsible for permanent.  The log is
// forced through the commit record before Commit returns: a nil return
// means the commit record is on stable storage and the transaction will
// be a winner of any later crash.  Transient device errors during the
// force are absorbed by the WAL's bounded-backoff retry; a persistent
// failure returns an error (the transaction is NOT committed — though a
// crash may still find the record durable; recovery honors the log) and
// moves the database to degraded mode.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	if tx.stx != nil {
		err := tx.stx.Commit()
		tx.done = tx.stx.Done()
		return err
	}
	if err := tx.db.eng.Commit(tx.id); err != nil {
		if errors.Is(err, ErrCommitAborted) {
			// The early-lock-release rollback terminated the
			// transaction; the handle is dead too.
			tx.done = true
		}
		return err
	}
	tx.done = true
	return nil
}

// Abort rolls back every update tx is responsible for — its own and any
// received through delegation.  Updates it delegated away are untouched.
//
// Crash-safety contract: a nil return means the rollback took effect in
// volatile state and its locks were released; its durability is NOT
// guaranteed (none is needed — a crash before the abort's records reach
// the device simply makes recovery re-abort the transaction, landing in
// the same state).  Abort therefore remains available in degraded mode,
// where it is the sanctioned way to release a failed transaction's locks.
func (tx *Tx) Abort() error {
	if tx.done {
		return ErrTxDone
	}
	if tx.stx != nil {
		err := tx.stx.Abort()
		tx.done = tx.stx.Done()
		return err
	}
	if err := tx.db.eng.Abort(tx.id); err != nil {
		return err
	}
	tx.done = true
	return nil
}

// Done reports whether the transaction was terminated through this handle.
// A transaction ended behind the handle's back — by a dependency cascade
// or a crash — still reports false here; its operations return
// ErrNoSuchTxn (the engine is the source of truth).
func (tx *Tx) Done() bool { return tx.done }

// Savepoint marks a partial-rollback point.  Savepoints are volatile: a
// crash aborts the whole transaction regardless.
type Savepoint struct{ sp core.Savepoint }

// Savepoint records a rollback point at the transaction's current state.
// ErrSharded on a sharded database.
func (tx *Tx) Savepoint() (Savepoint, error) {
	if tx.done {
		return Savepoint{}, ErrTxDone
	}
	if tx.stx != nil {
		return Savepoint{}, ErrSharded
	}
	sp, err := tx.db.eng.Savepoint(tx.id)
	return Savepoint{sp: sp}, err
}

// RollbackTo undoes every update the transaction is responsible for that
// postdates the savepoint — its own and any received through delegation —
// and leaves the transaction active.  Updates delegated away after the
// savepoint are untouched: the delegation stands.
func (tx *Tx) RollbackTo(sp Savepoint) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.stx != nil {
		return ErrSharded
	}
	return tx.db.eng.RollbackTo(sp.sp)
}

// MinRequiredLSN returns the oldest log record a future recovery could
// need; the prefix before it is archivable.  Live delegated scopes can pin
// the log arbitrarily far back — an operational consequence of delegation.
// Unresolved two-phase state pins it too: an unreleased commit decision
// holds the log at its prepare record until every participant has
// learned the outcome.  ErrSharded on a sharded database (each shard
// has its own LSN space; archive per shard via internal tools).
func (db *DB) MinRequiredLSN() (uint64, error) {
	if db.sh != nil {
		return 0, ErrSharded
	}
	lsn, err := db.eng.MinRequiredLSN()
	return uint64(lsn), err
}
