package ariesrh

import (
	"errors"
	"testing"

	"ariesrh/internal/fault"
)

// TestFaultDirOptionAndHealth drives the degraded-mode lifecycle
// through the public API: a fault.Dir injected via Options.FaultDir
// kills the device, commits fail, Health reports degraded, reads and
// Abort keep working, and a restart with a healed device repairs it.
func TestFaultDirOptionAndHealth(t *testing.T) {
	store := fault.NewDir(fault.Plan{})
	db, err := Open(Options{FaultDir: store})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Update(1, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if h := db.Health(); h.State != StateHealthy {
		t.Fatalf("Health = %v, want healthy", h.State)
	}

	t2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := t2.Update(2, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	store.SetFailAllSyncs(true)
	if err := t2.Commit(); err == nil {
		t.Fatal("Commit succeeded against a dead device")
	}
	h := db.Health()
	if h.State != StateDegraded || h.Err == nil {
		t.Fatalf("Health = %+v, want degraded with a cause", h)
	}
	if v, ok, err := db.ReadCommitted(1); err != nil || !ok || string(v) != "durable" {
		t.Fatalf("ReadCommitted in degraded mode = %q/%v/%v", v, ok, err)
	}
	if _, err := db.Begin(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Begin in degraded mode = %v, want ErrDegraded", err)
	}
	if err := t2.Abort(); err != nil {
		t.Fatalf("Abort in degraded mode = %v, want success", err)
	}

	// Heal the device and restart.
	store.SetFailAllSyncs(false)
	if _, err := store.CrashNow(); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	if h := db.Health(); h.State != StateHealthy {
		t.Fatalf("Health after restart = %v, want healthy", h.State)
	}
	if v, ok, err := db.ReadCommitted(1); err != nil || !ok || string(v) != "durable" {
		t.Fatalf("ReadCommitted after restart = %q/%v/%v", v, ok, err)
	}
	if _, ok, err := db.ReadCommitted(2); err != nil || ok {
		t.Fatalf("unacknowledged commit survived: ok=%v err=%v", ok, err)
	}
}

// TestFaultDirExcludesDir pins the Options contract: a directory-backed
// database opens its own log directory, so combining Dir with FaultDir
// is rejected rather than silently ignoring one of them.
func TestFaultDirExcludesDir(t *testing.T) {
	store := fault.NewDir(fault.Plan{})
	if _, err := Open(Options{Dir: t.TempDir(), FaultDir: store}); err == nil {
		t.Fatal("Open accepted Dir together with FaultDir")
	}
}
