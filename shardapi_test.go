package ariesrh_test

import (
	"errors"
	"testing"

	"ariesrh"
)

// modRouter routes obj to shard obj % n, giving tests deterministic
// object placement.
type modRouter struct{}

func (modRouter) Route(obj ariesrh.ObjectID, n int) uint32 {
	return uint32(uint64(obj) % uint64(n))
}

// TestShardedPublicAPI drives the sharded database end-to-end through
// the public surface: cross-shard commit, cross-shard delegation,
// whole-cluster crash and recovery, metric aggregation, and the
// documented ErrSharded rejections.
func TestShardedPublicAPI(t *testing.T) {
	db, err := ariesrh.Open(ariesrh.Options{
		Shards:      2,
		ShardRouter: modRouter{},
		GroupCommit: ariesrh.GroupCommitOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.Shards(); got != 2 {
		t.Fatalf("Shards() = %d, want 2", got)
	}

	// Cross-shard transaction: objects 2 and 3 live on different shards.
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if tx.GID() == 0 {
		t.Fatal("sharded Tx has no GID")
	}
	if err := tx.Update(2, []byte("even")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(3, []byte("odd")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Cross-shard delegation through Tx.Delegate.
	t1, _ := db.Begin()
	if err := t1.Update(4, []byte("anchor")); err != nil { // shard 0
		t.Fatal(err)
	}
	if err := t1.Update(5, []byte("delegated")); err != nil { // shard 1
		t.Fatal(err)
	}
	t2, _ := db.Begin()
	if err := t2.Update(6, []byte("t2")); err != nil { // shard 0: t2 coordinates there
		t.Fatal(err)
	}
	if err := t1.Delegate(t2, 5); err != nil {
		t.Fatal(err)
	}
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	for obj, want := range map[ariesrh.ObjectID]string{2: "even", 3: "odd", 5: "delegated", 6: "t2"} {
		v, ok, err := db.ReadCommitted(obj)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(v) != want {
			t.Fatalf("obj %d = %q (ok=%v) after crash, want %q", obj, v, ok, want)
		}
	}
	if v, ok, _ := db.ReadCommitted(4); ok {
		t.Fatalf("t1's aborted update survived: obj 4 = %q", v)
	}

	// Aggregated metrics carry router series and per-shard breakdowns.
	m := db.Metrics()
	if m.Counter("router.cross_shard_commits") == 0 {
		t.Fatal("no cross-shard commits counted")
	}
	if m.Counter("core.commits") != m.Counter("shard.0.core.commits")+m.Counter("shard.1.core.commits") {
		t.Fatal("aggregated core.commits is not the per-shard sum")
	}
	if db.LastRecoveryTrace().ForwardRecords == 0 {
		t.Fatal("merged recovery trace is empty")
	}
	if db.Stats().Commits == 0 {
		t.Fatal("summed Stats shows no commits")
	}

	// Documented rejections.
	if _, err := db.MinRequiredLSN(); !errors.Is(err, ariesrh.ErrSharded) {
		t.Fatalf("MinRequiredLSN error = %v, want ErrSharded", err)
	}
	if _, err := db.ResponsibleFor(1); !errors.Is(err, ariesrh.ErrSharded) {
		t.Fatalf("ResponsibleFor error = %v, want ErrSharded", err)
	}
	sp, _ := db.Begin()
	defer sp.Abort()
	if _, err := sp.Savepoint(); !errors.Is(err, ariesrh.ErrSharded) {
		t.Fatalf("Savepoint error = %v, want ErrSharded", err)
	}
	if err := db.Backup(t.TempDir()); !errors.Is(err, ariesrh.ErrSharded) {
		t.Fatalf("Backup error = %v, want ErrSharded", err)
	}
	if db.Engine() != nil {
		t.Fatal("Engine() must be nil on a sharded database")
	}
}

// TestUnshardedUntouched pins that Shards 0/1 keep the single-engine
// path: Engine() is non-nil, GID is 0, and everything behaves as
// before the option existed.
func TestUnshardedUntouched(t *testing.T) {
	for _, n := range []int{0, 1} {
		db, err := ariesrh.Open(ariesrh.Options{Shards: n})
		if err != nil {
			t.Fatal(err)
		}
		if db.Engine() == nil {
			t.Fatalf("Shards=%d: Engine() is nil", n)
		}
		if db.Shards() != 1 {
			t.Fatalf("Shards=%d: Shards() = %d", n, db.Shards())
		}
		tx, _ := db.Begin()
		if tx.GID() != 0 {
			t.Fatalf("Shards=%d: unsharded Tx has GID %d", n, tx.GID())
		}
		if err := tx.Update(1, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		db.Close()
	}
}
