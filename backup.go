package ariesrh

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Backup takes an online, crash-consistent backup of a file-backed
// database into destDir: the engine is quiesced (log flushed, no
// concurrent mutations), and the log directory, pages and master record
// are copied.  The backup is a valid database directory — Open on it
// runs ordinary restart recovery, rolling back whatever was in flight at
// backup time.  In-memory databases (no Dir) cannot be backed up.
//
// Log copying is incremental across repeated backups into the same
// destDir: the segmented WAL's files are immutable once sealed (sealed
// segments and manifest generations are never rewritten, and the active
// segment only grows), so a destination file with the same name and size
// as the source is already identical and is skipped — only segments past
// what the previous backup shipped cost I/O.  Files the source no longer
// has (archived segments, superseded manifest generations) are deleted
// from the destination so the copy is exactly the source directory.
func (db *DB) Backup(destDir string) error {
	if db.dir == "" {
		return fmt.Errorf("ariesrh: backup requires a file-backed database")
	}
	if err := os.MkdirAll(destDir, 0o755); err != nil {
		return err
	}
	return db.eng.Quiesce(func() error {
		for _, name := range []string{"pages.db", "master"} {
			if err := copyFile(filepath.Join(db.dir, name), filepath.Join(destDir, name)); err != nil {
				return fmt.Errorf("ariesrh: backup %s: %w", name, err)
			}
		}
		if err := syncDirCopy(filepath.Join(db.dir, "wal"), filepath.Join(destDir, "wal")); err != nil {
			return fmt.Errorf("ariesrh: backup wal: %w", err)
		}
		return nil
	})
}

// syncDirCopy mirrors the flat file directory src into dst, skipping
// files whose name and size already match (valid only because every WAL
// file is append-only or immutable) and deleting files absent from src.
func syncDirCopy(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	srcEntries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	srcNames := make(map[string]bool, len(srcEntries))
	for _, e := range srcEntries {
		if !e.Type().IsRegular() {
			continue
		}
		srcNames[e.Name()] = true
		info, err := e.Info()
		if err != nil {
			return err
		}
		if dstInfo, err := os.Stat(filepath.Join(dst, e.Name())); err == nil &&
			dstInfo.Mode().IsRegular() && dstInfo.Size() == info.Size() {
			continue // sealed/immutable file already shipped
		}
		if err := copyFile(filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())); err != nil {
			return err
		}
	}
	dstEntries, err := os.ReadDir(dst)
	if err != nil {
		return err
	}
	for _, e := range dstEntries {
		if e.Type().IsRegular() && !srcNames[e.Name()] {
			if err := os.Remove(filepath.Join(dst, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
