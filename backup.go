package ariesrh

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Backup takes an online, crash-consistent backup of a file-backed
// database into destDir: the engine is quiesced (log flushed, no
// concurrent mutations), and the log, pages and master record are copied.
// The backup is a valid database directory — Open on it runs ordinary
// restart recovery, rolling back whatever was in flight at backup time.
// In-memory databases (no Dir) cannot be backed up.
func (db *DB) Backup(destDir string) error {
	if db.dir == "" {
		return fmt.Errorf("ariesrh: backup requires a file-backed database")
	}
	if err := os.MkdirAll(destDir, 0o755); err != nil {
		return err
	}
	return db.eng.Quiesce(func() error {
		for _, name := range []string{"wal.log", "pages.db", "master"} {
			if err := copyFile(filepath.Join(db.dir, name), filepath.Join(destDir, name)); err != nil {
				return fmt.Errorf("ariesrh: backup %s: %w", name, err)
			}
		}
		return nil
	})
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
