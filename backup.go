package ariesrh

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Backup takes an online, crash-consistent backup of a file-backed
// database into destDir: the engine is quiesced (log flushed, no
// concurrent mutations), and the log directory, pages and master record
// are copied.  The backup is a valid database directory — Open on it
// runs ordinary restart recovery, rolling back whatever was in flight at
// backup time.  In-memory databases (no Dir) cannot be backed up.
//
// Log copying is incremental across repeated backups into the same
// destDir: a destination file whose bytes already match the source is
// skipped, so segments shipped by a previous backup cost only a read
// (to verify) and no writes or syncs.  The verification is a byte
// comparison, not a name+size check — same size does not imply same
// content: torn-tail recovery can truncate a segment and later appends
// return it to a previously shipped size with different bytes, and the
// naïve-baseline engines' (*wal.Log).Rewrite patches stable segment
// bytes in place at unchanged size.  Files the source no longer has
// (archived segments, superseded manifest generations) are deleted from
// the destination so the copy is exactly the source directory.
func (db *DB) Backup(destDir string) error {
	if db.sh != nil {
		return ErrSharded
	}
	if db.dir == "" {
		return fmt.Errorf("ariesrh: backup requires a file-backed database")
	}
	if err := os.MkdirAll(destDir, 0o755); err != nil {
		return err
	}
	return db.eng.Quiesce(func() error {
		for _, name := range []string{"pages.db", "master"} {
			if err := copyFile(filepath.Join(db.dir, name), filepath.Join(destDir, name)); err != nil {
				return fmt.Errorf("ariesrh: backup %s: %w", name, err)
			}
		}
		if err := syncDirCopy(filepath.Join(db.dir, "wal"), filepath.Join(destDir, "wal")); err != nil {
			return fmt.Errorf("ariesrh: backup wal: %w", err)
		}
		return nil
	})
}

// syncDirCopy mirrors the flat file directory src into dst, skipping
// files whose destination bytes already equal the source (verified by
// comparison — name and size alone cannot prove identity, see Backup)
// and deleting files absent from src.
func syncDirCopy(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	srcEntries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	srcNames := make(map[string]bool, len(srcEntries))
	for _, e := range srcEntries {
		if !e.Type().IsRegular() {
			continue
		}
		srcNames[e.Name()] = true
		info, err := e.Info()
		if err != nil {
			return err
		}
		srcPath := filepath.Join(src, e.Name())
		dstPath := filepath.Join(dst, e.Name())
		if dstInfo, err := os.Stat(dstPath); err == nil &&
			dstInfo.Mode().IsRegular() && dstInfo.Size() == info.Size() {
			same, err := filesEqual(srcPath, dstPath)
			if err != nil {
				return err
			}
			if same {
				continue // already shipped, verified byte-for-byte
			}
		}
		if err := copyFile(srcPath, dstPath); err != nil {
			return err
		}
	}
	dstEntries, err := os.ReadDir(dst)
	if err != nil {
		return err
	}
	for _, e := range dstEntries {
		if e.Type().IsRegular() && !srcNames[e.Name()] {
			if err := os.Remove(filepath.Join(dst, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// filesEqual reports whether the two files hold identical bytes.  The
// caller has already matched their sizes.
func filesEqual(a, b string) (bool, error) {
	fa, err := os.Open(a)
	if err != nil {
		return false, err
	}
	defer fa.Close()
	fb, err := os.Open(b)
	if err != nil {
		return false, err
	}
	defer fb.Close()
	bufA := make([]byte, 64<<10)
	bufB := make([]byte, 64<<10)
	for {
		na, errA := io.ReadFull(fa, bufA)
		nb, errB := io.ReadFull(fb, bufB)
		if na != nb || !bytes.Equal(bufA[:na], bufB[:nb]) {
			return false, nil
		}
		endA := errA == io.EOF || errA == io.ErrUnexpectedEOF
		endB := errB == io.EOF || errB == io.ErrUnexpectedEOF
		if endA || endB {
			return endA && endB && na == nb, nil
		}
		if errA != nil {
			return false, errA
		}
		if errB != nil {
			return false, errB
		}
	}
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
