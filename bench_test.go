// Package ariesrh benchmarks: one testing.B benchmark per experiment in
// EXPERIMENTS.md (E1..E6, E8), exercising the primitive costs the paper's
// efficiency argument (§4.2) is built on.  cmd/rhbench produces the full
// tables; these benchmarks are the `go test -bench` entry points.
package ariesrh_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"ariesrh"
	"ariesrh/etm"
	"ariesrh/internal/aries"
	"ariesrh/internal/core"
	"ariesrh/internal/eos"
	"ariesrh/internal/rewrite"
	"ariesrh/internal/sim"
	"ariesrh/internal/wal"
)

// --- E1: no delegation, no overhead -----------------------------------

// benchNormalProcessing measures update throughput on a delegation-free
// workload for any engine exposing the three primitives.
func benchNormalProcessing(b *testing.B,
	begin func() (wal.TxID, error),
	update func(wal.TxID, wal.ObjectID, []byte) error,
	commit func(wal.TxID) error,
) {
	b.Helper()
	val := []byte("bench-value-0123456789abcdef")
	const perTxn = 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := begin()
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < perTxn; j++ {
			// Bounded object space: steady-state cost, not DB growth.
			if err := update(tx, wal.ObjectID((i*perTxn+j)%50000+1), val); err != nil {
				b.Fatal(err)
			}
		}
		if err := commit(tx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1NormalProcessing(b *testing.B) {
	b.Run("aries", func(b *testing.B) {
		e, err := aries.New(aries.Options{PoolSize: 1024})
		if err != nil {
			b.Fatal(err)
		}
		benchNormalProcessing(b, e.Begin, e.Update, e.Commit)
	})
	b.Run("ariesrh", func(b *testing.B) {
		e, err := core.New(core.Options{PoolSize: 1024})
		if err != nil {
			b.Fatal(err)
		}
		benchNormalProcessing(b, e.Begin, e.Update, e.Commit)
	})
}

func BenchmarkE1Recovery(b *testing.B) {
	const txns, perTxn = 200, 8
	b.Run("aries", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e, err := aries.New(aries.Options{PoolSize: 1024})
			if err != nil {
				b.Fatal(err)
			}
			seedDelegationFree(b, e.Begin, e.Update, e.Commit, txns, perTxn)
			if err := e.Log().Flush(1 << 62); err != nil {
				b.Fatal(err)
			}
			if err := e.Crash(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := e.Recover(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ariesrh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e, err := core.New(core.Options{PoolSize: 1024})
			if err != nil {
				b.Fatal(err)
			}
			seedDelegationFree(b, e.Begin, e.Update, e.Commit, txns, perTxn)
			if err := e.Log().Flush(1 << 62); err != nil {
				b.Fatal(err)
			}
			if err := e.Crash(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := e.Recover(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func seedDelegationFree(b *testing.B,
	begin func() (wal.TxID, error),
	update func(wal.TxID, wal.ObjectID, []byte) error,
	commit func(wal.TxID) error,
	txns, perTxn int,
) {
	b.Helper()
	val := []byte("bench-value")
	for i := 0; i < txns; i++ {
		tx, err := begin()
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < perTxn; j++ {
			// Bounded object space: steady-state cost, not DB growth.
			if err := update(tx, wal.ObjectID((i*perTxn+j)%50000+1), val); err != nil {
				b.Fatal(err)
			}
		}
		// Leave every 10th transaction uncommitted: undo work exists.
		if i%10 != 0 {
			if err := commit(tx); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- E2: delegation cost linear in objects delegated ------------------

func BenchmarkE2Delegate(b *testing.B) {
	for _, objs := range []int{1, 16, 256, 1024} {
		b.Run(fmt.Sprintf("objs-%d", objs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e, err := core.New(core.Options{PoolSize: 1024})
				if err != nil {
					b.Fatal(err)
				}
				tor, _ := e.Begin()
				tee, _ := e.Begin()
				for k := 0; k < objs; k++ {
					if err := e.Update(tor, wal.ObjectID(k+1), []byte("v")); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				if err := e.DelegateAll(tor, tee); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(objs), "ns/object")
		})
	}
}

// --- E3: recovery cost vs delegation rate ------------------------------

func BenchmarkE3Recovery(b *testing.B) {
	for _, rate := range []float64{0, 0.2, 0.4} {
		cfg := sim.Config{
			Seed: 42, Steps: 2000, Objects: 256, MaxActive: 8,
			DelegationRate: rate, TerminateRate: 0.10, AbortFraction: 0.3,
		}
		trace := sim.Generate(cfg)
		for _, engine := range []string{"ariesrh", "eager", "lazy"} {
			b.Run(fmt.Sprintf("rate-%.2f/%s", rate, engine), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					var target sim.Target
					switch engine {
					case "ariesrh":
						e, err := core.New(core.Options{PoolSize: 1024})
						if err != nil {
							b.Fatal(err)
						}
						target = sim.CoreTarget{Engine: e}
					case "eager":
						e, err := rewrite.New(rewrite.Options{Mode: rewrite.Eager, PoolSize: 1024})
						if err != nil {
							b.Fatal(err)
						}
						target = sim.RewriteTarget{Engine: e}
					case "lazy":
						e, err := rewrite.New(rewrite.Options{Mode: rewrite.Lazy, PoolSize: 1024})
						if err != nil {
							b.Fatal(err)
						}
						target = sim.RewriteTarget{Engine: e}
					}
					rep := sim.NewReplayer(target, trace)
					if err := rep.RunTo(-1); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if err := rep.CrashRecover(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- E4: cost of one delegation vs log length --------------------------

func BenchmarkE4DelegationVsLogLength(b *testing.B) {
	for _, pad := range []int{1000, 8000} {
		b.Run(fmt.Sprintf("log-%d/eager", pad), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e, err := rewrite.New(rewrite.Options{Mode: rewrite.Eager, PoolSize: 1024})
				if err != nil {
					b.Fatal(err)
				}
				tor, _ := e.Begin()
				if err := e.Update(tor, 1, []byte("v")); err != nil {
					b.Fatal(err)
				}
				filler, _ := e.Begin()
				for k := 0; k < pad; k++ {
					if err := e.Update(filler, wal.ObjectID(100+k), []byte("pad")); err != nil {
						b.Fatal(err)
					}
				}
				tee, _ := e.Begin()
				b.StartTimer()
				if err := e.Delegate(tor, tee, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("log-%d/ariesrh", pad), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e, err := core.New(core.Options{PoolSize: 1024})
				if err != nil {
					b.Fatal(err)
				}
				tor, _ := e.Begin()
				if err := e.Update(tor, 1, []byte("v")); err != nil {
					b.Fatal(err)
				}
				filler, _ := e.Begin()
				for k := 0; k < pad; k++ {
					if err := e.Update(filler, wal.ObjectID(100+k), []byte("pad")); err != nil {
						b.Fatal(err)
					}
				}
				tee, _ := e.Begin()
				b.StartTimer()
				if err := e.Delegate(tor, tee, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5: EOS ------------------------------------------------------------

func BenchmarkE5EOSCommitWithDelegation(b *testing.B) {
	e, err := eos.New(eos.Options{PoolSize: 1024})
	if err != nil {
		b.Fatal(err)
	}
	val := []byte("bench-value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := e.Begin()
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 8; j++ {
			if err := e.Update(tx, wal.ObjectID((i*8+j)%50000+1), val); err != nil {
				b.Fatal(err)
			}
		}
		sink, err := e.Begin()
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Delegate(tx, sink, wal.ObjectID((i*8)%50000+1)); err != nil {
			b.Fatal(err)
		}
		if err := e.Commit(sink); err != nil {
			b.Fatal(err)
		}
		if err := e.Commit(tx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5EOSRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := eos.New(eos.Options{PoolSize: 1024})
		if err != nil {
			b.Fatal(err)
		}
		val := []byte("bench-value")
		for t := 0; t < 200; t++ {
			tx, err := e.Begin()
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < 8; j++ {
				if err := e.Update(tx, wal.ObjectID(t*8+j+1), val); err != nil {
					b.Fatal(err)
				}
			}
			if err := e.Commit(tx); err != nil {
				b.Fatal(err)
			}
		}
		if err := e.Crash(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := e.Recover(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: group commit ----------------------------------------------------

// BenchmarkE8GroupCommit measures parallel commit throughput with the
// group-commit flush coalescing on vs off.  b.RunParallel supplies the
// concurrent committers; each goroutine works a private object range so
// only the log force is contended.  cmd/rhbench -exp e8 produces the full
// sweep with a modelled device-sync latency; on a pure MemStore the sync
// is free, so the delta here reflects latch-hold time, not device time.
func BenchmarkE8GroupCommit(b *testing.B) {
	val := []byte("bench-value-0123456789abcdef")
	for _, mode := range []struct {
		name string
		gc   core.GroupCommitMode
	}{{"group-on", core.GroupCommitOn}, {"group-off", core.GroupCommitOff}} {
		b.Run(mode.name, func(b *testing.B) {
			e, err := core.New(core.Options{PoolSize: 4096, GroupCommit: mode.gc})
			if err != nil {
				b.Fatal(err)
			}
			var worker int32
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := atomic.AddInt32(&worker, 1)
				base := wal.ObjectID(1 + int(w)*1024)
				i := 0
				for pb.Next() {
					tx, err := e.Begin()
					if err != nil {
						b.Fatal(err)
					}
					for j := 0; j < 4; j++ {
						if err := e.Update(tx, base+wal.ObjectID((i*4+j)%512), val); err != nil {
							b.Fatal(err)
						}
					}
					if err := e.Commit(tx); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
			b.StopTimer()
			st := e.LogStats()
			if st.GroupedFlushes > 0 {
				b.ReportMetric(float64(st.FlushWaiters)/float64(st.GroupedFlushes), "waiters/flush")
			}
		})
	}
}

// --- E6: extended transaction models ------------------------------------

func BenchmarkE6Nested(b *testing.B) {
	db, err := ariesrh.Open(ariesrh.Options{PoolSize: 1024})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trip, err := etm.BeginNested(db)
		if err != nil {
			b.Fatal(err)
		}
		a := ariesrh.ObjectID((i*2)%50000 + 1)
		c := ariesrh.ObjectID((i*2)%50000 + 2)
		if err := trip.Sub(func(res *etm.NestedTx) error {
			return res.Update(a, []byte("flight"))
		}); err != nil {
			b.Fatal(err)
		}
		if err := trip.Sub(func(res *etm.NestedTx) error {
			return res.Update(c, []byte("hotel"))
		}); err != nil {
			b.Fatal(err)
		}
		if err := trip.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6Split(b *testing.B) {
	db, err := ariesrh.Open(ariesrh.Options{PoolSize: 1024})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := db.Begin()
		if err != nil {
			b.Fatal(err)
		}
		a := ariesrh.ObjectID((i*2)%50000 + 1)
		c := ariesrh.ObjectID((i*2)%50000 + 2)
		if err := sess.Update(a, []byte("done")); err != nil {
			b.Fatal(err)
		}
		if err := sess.Update(c, []byte("draft")); err != nil {
			b.Fatal(err)
		}
		early, err := etm.Split(sess, a)
		if err != nil {
			b.Fatal(err)
		}
		if err := early.Commit(); err != nil {
			b.Fatal(err)
		}
		if err := sess.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6FlatBaseline(b *testing.B) {
	db, err := ariesrh.Open(ariesrh.Options{PoolSize: 1024})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := db.Begin()
		if err != nil {
			b.Fatal(err)
		}
		if err := tx.Update(ariesrh.ObjectID((i*2)%50000+1), []byte("flight")); err != nil {
			b.Fatal(err)
		}
		if err := tx.Update(ariesrh.ObjectID((i*2)%50000+2), []byte("hotel")); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
