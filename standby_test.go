package ariesrh

import (
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"
)

func waitStandby(t *testing.T, s *Standby, target uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.ReplayedLSN() < target {
		if time.Now().After(deadline) {
			t.Fatalf("standby stuck at %d, want %d", s.ReplayedLSN(), target)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStandbyBootstrapFollowPromote drives the full operator sequence
// through the public API: attach the replica feed, take the bootstrap
// backup, restore it as a standby, stream the tail, read at the replayed
// LSN, then promote after "losing" the primary.
func TestStandbyBootstrapFollowPromote(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, GroupCommit: GroupCommitOff})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-backup history: a committed value and a delegation whose
	// delegatee commits.
	t1, _ := db.Begin()
	t2, _ := db.Begin()
	if err := t1.Update(1, []byte("pre-backup")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Delegate(t2, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}

	// Attach BEFORE the backup so the retention pin covers the gap
	// between backup and first connect.
	feed, err := db.AttachReplica()
	if err != nil {
		t.Fatal(err)
	}
	backupDir := filepath.Join(t.TempDir(), "standby")
	if err := db.Backup(backupDir); err != nil {
		t.Fatal(err)
	}

	// Post-backup, pre-connect history — only the stream can deliver it.
	t3, _ := db.Begin()
	if err := t3.Update(2, []byte("post-backup")); err != nil {
		t.Fatal(err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}

	sb, err := OpenStandby(StandbyOptions{Dir: backupDir})
	if err != nil {
		t.Fatal(err)
	}
	if h := sb.Health(); h.State != StateFollower {
		t.Fatalf("standby state = %v", h.State)
	}
	// Catch-up over the restored log already happened at open.
	if v, ok, _, err := sb.Read(1); err != nil || !ok || string(v) != "pre-backup" {
		t.Fatalf("restored read = %q, %v, %v", v, ok, err)
	}

	c1, c2 := net.Pipe()
	serveDone := make(chan error, 1)
	followDone := make(chan error, 1)
	go func() { serveDone <- feed.Serve(c1) }()
	go func() { followDone <- sb.Follow(c2) }()

	// An in-flight transaction streams too; its fate is undecided.
	loser, _ := db.Begin()
	if err := loser.Update(3, []byte("in-flight")); err != nil {
		t.Fatal(err)
	}
	if err := db.Engine().Log().Flush(db.Engine().Log().Head()); err != nil {
		t.Fatal(err)
	}
	target := uint64(db.Engine().Log().FlushedLSN())
	waitStandby(t, sb, target)

	if v, ok, at, err := sb.Read(2); err != nil || !ok || string(v) != "post-backup" || at < target {
		t.Fatalf("streamed read = %q, %v, at %d, %v", v, ok, at, err)
	}
	h := sb.Health()
	if h.ReplayedLSN != target || h.LagRecords != 0 {
		t.Fatalf("health = %+v, want replayed %d", h, target)
	}
	// The primary's metrics report the replication lag series.
	deadline := time.Now().Add(5 * time.Second)
	for feed.AckedLSN() < target {
		if time.Now().After(deadline) {
			t.Fatalf("acks stuck at %d, want %d", feed.AckedLSN(), target)
		}
		time.Sleep(time.Millisecond)
	}
	snap := db.Metrics()
	if snap.Counter("repl.shipped_records") == 0 || snap.Counter("repl.shipped_bytes") == 0 {
		t.Fatalf("shipped counters missing: %d records, %d bytes",
			snap.Counter("repl.shipped_records"), snap.Counter("repl.shipped_bytes"))
	}
	if lag := snap.Gauge("repl.lag_records"); lag != 0 {
		t.Fatalf("lag_records = %d after full catch-up", lag)
	}

	// "Lose" the primary: sever the stream and promote the standby.
	c2.Close()
	<-serveDone
	<-followDone
	promoted, err := sb.Promote()
	if err != nil {
		t.Fatal(err)
	}
	// Winners survive, the in-flight loser is rolled back.
	if v, ok, err := promoted.ReadCommitted(1); err != nil || !ok || string(v) != "pre-backup" {
		t.Fatalf("promoted obj1 = %q, %v, %v", v, ok, err)
	}
	if v, ok, err := promoted.ReadCommitted(2); err != nil || !ok || string(v) != "post-backup" {
		t.Fatalf("promoted obj2 = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := promoted.ReadCommitted(3); ok {
		t.Fatal("in-flight transaction survived promotion")
	}
	// The promoted DB accepts writes and is file-backed (Backup works).
	tx, err := promoted.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(4, []byte("new-epoch")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := promoted.Backup(filepath.Join(t.TempDir(), "gen2")); err != nil {
		t.Fatalf("promoted Backup = %v", err)
	}
	if err := promoted.Close(); err != nil {
		t.Fatal(err)
	}
	feed.Detach()
	db.Close()
}

func TestStandbyRejectsWrites(t *testing.T) {
	sb, err := OpenStandby()
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	if _, err := sb.Engine().Begin(); !errors.Is(err, ErrFollower) {
		t.Fatalf("Begin on standby = %v, want ErrFollower", err)
	}
}

func TestStandbySnapshotNeededSurfaces(t *testing.T) {
	db, err := Open(Options{GroupCommit: GroupCommitOff})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	if err := tx.Update(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	log := db.Engine().Log()
	if err := log.Flush(log.Head()); err != nil {
		t.Fatal(err)
	}
	if err := log.Archive(log.FlushedLSN()); err != nil {
		t.Fatal(err)
	}
	feed, err := db.AttachReplica()
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Detach()
	sb, err := OpenStandby()
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	c1, c2 := net.Pipe()
	go feed.Serve(c1)
	if err := sb.Follow(c2); !errors.Is(err, ErrSnapshotNeeded) {
		t.Fatalf("Follow = %v, want ErrSnapshotNeeded", err)
	}
}

func TestStandbyParallelPromote(t *testing.T) {
	// An empty-stream standby promoted through the pipeline: Promote
	// returns with the sweep in flight (trivially short here) and the
	// promoted DB accepts writes after WaitRecovered.
	s, err := OpenStandby(StandbyOptions{ParallelRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	db, err := s.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WaitRecovered(); err != nil {
		t.Fatal(err)
	}
	if st := db.Health().State; st != StateHealthy {
		t.Fatalf("state = %v after promotion", st)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(1, []byte("post-promotion")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
