package ariesrh

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

func openDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestAPIQuickstartFlow(t *testing.T) {
	db := openDB(t)
	worker, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := worker.Update(1, []byte("result")); err != nil {
		t.Fatal(err)
	}
	coordinator, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := worker.Delegate(coordinator, 1); err != nil {
		t.Fatal(err)
	}
	if err := worker.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := coordinator.Commit(); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.ReadCommitted(1)
	if err != nil || !ok || !bytes.Equal(v, []byte("result")) {
		t.Fatalf("v=%q ok=%v err=%v", v, ok, err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	v, _, err = db.ReadCommitted(1)
	if err != nil || !bytes.Equal(v, []byte("result")) {
		t.Fatalf("after recovery: v=%q err=%v", v, err)
	}
}

func TestAPITerminatedTxRejected(t *testing.T) {
	db := openDB(t)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !tx.Done() {
		t.Fatal("Done() false after commit")
	}
	if err := tx.Update(1, []byte("x")); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Update err = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Commit err = %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Abort err = %v", err)
	}
	if _, err := tx.Read(1); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Read err = %v", err)
	}
	tx2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Delegate(tx, 1); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Delegate to done tx err = %v", err)
	}
	tx2.Abort()
}

func TestAPIDelegatePrecondition(t *testing.T) {
	db := openDB(t)
	t1, _ := db.Begin()
	t2, _ := db.Begin()
	if err := t1.Delegate(t2, 42); !errors.Is(err, ErrNotResponsible) {
		t.Fatalf("err = %v", err)
	}
	t1.Abort()
	t2.Abort()
}

func TestAPIObjectsAndResponsibleFor(t *testing.T) {
	db := openDB(t)
	t1, _ := db.Begin()
	t2, _ := db.Begin()
	if err := t1.Update(5, []byte("v")); err != nil { // LSN 3
		t.Fatal(err)
	}
	objs, err := t1.Objects()
	if err != nil || len(objs) != 1 || objs[0] != 5 {
		t.Fatalf("objects = %v err = %v", objs, err)
	}
	if err := t1.Delegate(t2, 5); err != nil {
		t.Fatal(err)
	}
	owner, err := db.ResponsibleFor(3)
	if err != nil {
		t.Fatal(err)
	}
	if owner != t2.ID() {
		t.Fatalf("ResponsibleFor = t%d, want t%d", owner, t2.ID())
	}
	t1.Abort()
	t2.Abort()
}

func TestAPICrashRejectsWork(t *testing.T) {
	db := openDB(t)
	tx, _ := db.Begin()
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Begin(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Begin err = %v", err)
	}
	if err := tx.Update(1, []byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Update err = %v", err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Begin(); err != nil {
		t.Fatal(err)
	}
}

func TestAPIFileBacked(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(1, []byte("persistent")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Files exist.
	for _, name := range []string{"wal.log", "pages.db", "master"} {
		if _, err := filepath.Glob(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen: committed state recovered from the files.
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, ok, err := db2.ReadCommitted(1)
	if err != nil || !ok || !bytes.Equal(v, []byte("persistent")) {
		t.Fatalf("reopen: v=%q ok=%v err=%v", v, ok, err)
	}
}

func TestAPIFileBackedCrashLosers(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	winner, _ := db.Begin()
	loser, _ := db.Begin()
	if err := winner.Update(1, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := loser.Update(2, []byte("drop")); err != nil {
		t.Fatal(err)
	}
	if err := winner.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	v, _, err := db.ReadCommitted(1)
	if err != nil || !bytes.Equal(v, []byte("keep")) {
		t.Fatalf("winner value %q err=%v", v, err)
	}
	if v, ok, _ := db.ReadCommitted(2); ok && len(v) > 0 {
		t.Fatalf("loser value survived: %q", v)
	}
	db.Close()
}

func TestAPIPermit(t *testing.T) {
	db := openDB(t)
	parent, _ := db.Begin()
	child, _ := db.Begin()
	if err := parent.Update(9, []byte("shared")); err != nil {
		t.Fatal(err)
	}
	if err := parent.Permit(child, 9); err != nil {
		t.Fatal(err)
	}
	v, err := child.Read(9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, []byte("shared")) {
		t.Fatalf("child read %q", v)
	}
	child.Abort()
	parent.Commit()
}

func TestAPICheckpoint(t *testing.T) {
	db := openDB(t)
	tx, _ := db.Begin()
	if err := tx.Update(1, []byte("before-ckpt")); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	v, _, err := db.ReadCommitted(1)
	if err != nil || !bytes.Equal(v, []byte("before-ckpt")) {
		t.Fatalf("v=%q err=%v", v, err)
	}
	if db.Stats().Checkpoints != 1 {
		t.Fatalf("checkpoints = %d", db.Stats().Checkpoints)
	}
}

func TestAPIIncrementAndCounters(t *testing.T) {
	db := openDB(t)
	t1, _ := db.Begin()
	t2, _ := db.Begin()
	if v, err := t1.Increment(1, 10); err != nil || v != 10 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	// Concurrent increment does not block.
	if v, err := t2.Increment(1, 5); err != nil || v != 15 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	// (No ReadCounter here: a shared lock conflicts with t2's increment
	// hold, so reading while another incrementer is live would wait —
	// the intended semantics, but not useful single-threaded.)
	if err := t2.Abort(); err != nil {
		t.Fatal(err)
	}
	if v, err := t1.ReadCounter(1); err != nil || v != 10 {
		t.Fatalf("ReadCounter = %d err=%v", v, err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	v, err := db.CounterValue(1)
	if err != nil || v != 10 {
		t.Fatalf("counter = %d err=%v", v, err)
	}
}

func TestAPISavepoints(t *testing.T) {
	db := openDB(t)
	tx, _ := db.Begin()
	if err := tx.Update(1, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	sp, err := tx.Savepoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(1, []byte("drop")); err != nil {
		t.Fatal(err)
	}
	if err := tx.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	v, _, err := db.ReadCommitted(1)
	if err != nil || string(v) != "keep" {
		t.Fatalf("v=%q err=%v", v, err)
	}
}

func TestAPIMinRequiredLSNAndArchive(t *testing.T) {
	db := openDB(t)
	tx, _ := db.Begin()
	if err := tx.Update(1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	min, err := db.MinRequiredLSN()
	if err != nil {
		t.Fatal(err)
	}
	if min != 1 {
		t.Fatalf("min = %d before any checkpoint", min)
	}
}

func TestAPIParallelRecovery(t *testing.T) {
	db, err := Open(Options{ParallelRecovery: true, GroupCommit: GroupCommitOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Update(ObjectID(i), []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	loser, _ := db.Begin()
	if err := loser.Update(9, []byte("loser")); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	// The hold keeps the pipeline from flipping the database writable, so
	// the recovering-but-readable window is deterministic.
	hold := make(chan struct{})
	db.Engine().SetRecoveryHold(hold)
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	if st := db.Health().State; st != StateRecovering {
		t.Fatalf("state = %v mid-recovery, want %v", st, StateRecovering)
	}
	v, ok, err := db.ReadCommitted(3)
	if err != nil || !ok || !bytes.Equal(v, []byte{'d'}) {
		t.Fatalf("mid-recovery read: v=%q ok=%v err=%v", v, ok, err)
	}
	if _, err := db.Begin(); !errors.Is(err, ErrRecovering) {
		t.Fatalf("mid-recovery Begin: err=%v, want ErrRecovering", err)
	}
	close(hold)
	if err := db.WaitRecovered(); err != nil {
		t.Fatal(err)
	}
	if st := db.Health().State; st != StateHealthy {
		t.Fatalf("state = %v after WaitRecovered", st)
	}
	if _, _, err := db.ReadCommitted(9); err != nil {
		t.Fatal(err)
	}
	if !db.LastRecoveryTrace().Parallel {
		t.Fatal("trace does not mark the pipeline")
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(1, []byte("post")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}
