// Command quickstart demonstrates the core of the library in a minute:
// transactions, delegation ("rewriting history"), crash and recovery.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ariesrh"
)

func main() {
	db, err := ariesrh.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const account = ariesrh.ObjectID(1)

	// A worker transaction computes a tentative result...
	worker, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := worker.Update(account, []byte("balance=100")); err != nil {
		log.Fatal(err)
	}

	// ...and hands responsibility for it to a coordinator.  From the
	// system's point of view, history has been rewritten: the update now
	// looks as if the coordinator had performed it all along.
	coordinator, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := worker.Delegate(coordinator, account); err != nil {
		log.Fatal(err)
	}

	// The worker can now fail without taking the result with it.
	if err := worker.Abort(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("worker aborted — delegated update still alive")

	// The fate of the update is the coordinator's to decide.
	if err := coordinator.Commit(); err != nil {
		log.Fatal(err)
	}
	v, _, err := db.ReadCommitted(account)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after coordinator commit: account = %q\n", v)

	// Crash and recover: the committed delegated update is durable.
	if err := db.Crash(); err != nil {
		log.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		log.Fatal(err)
	}
	v, _, err = db.ReadCommitted(account)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash + recovery:   account = %q\n", v)

	s := db.Stats()
	fmt.Printf("stats: %d updates, %d delegations, %d CLRs, recovery visited %d records backward\n",
		s.Updates, s.Delegations, s.CLRs, s.RecBackwardVisited)
}
