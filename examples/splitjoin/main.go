// Command splitjoin demonstrates split transactions (§2.2.1): an
// open-ended editing session that carves finished work out into an
// independently committing transaction, keeps editing, and finally joins a
// helper transaction's work back in.
//
// Run with: go run ./examples/splitjoin
package main

import (
	"fmt"
	"log"

	"ariesrh"
	"ariesrh/etm"
)

func main() {
	db, err := ariesrh.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const (
		chapter1 = ariesrh.ObjectID(1)
		chapter2 = ariesrh.ObjectID(2)
		chapter3 = ariesrh.ObjectID(3)
		appendix = ariesrh.ObjectID(4)
	)

	// A long editing session touches several chapters.
	session, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	for obj, text := range map[ariesrh.ObjectID]string{
		chapter1: "Chapter 1: final text",
		chapter2: "Chapter 2: final text",
		chapter3: "Chapter 3: rough draft",
	} {
		if err := session.Update(obj, []byte(text)); err != nil {
			log.Fatal(err)
		}
	}

	// Chapters 1 and 2 are done: split them off and commit them now,
	// without ending the session.
	finished, err := etm.Split(session, chapter1, chapter2)
	if err != nil {
		log.Fatal(err)
	}
	if err := finished.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("chapters 1-2 split off and committed; session still editing chapter 3")

	// A helper transaction drafts the appendix in parallel, then joins
	// the session: the session takes over responsibility for it.
	helper, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := helper.Update(appendix, []byte("Appendix: tables")); err != nil {
		log.Fatal(err)
	}
	if err := etm.Join(helper, session); err != nil {
		log.Fatal(err)
	}
	fmt.Println("helper joined: the session now owns the appendix draft")

	// The session decides chapter 3 isn't ready and abandons the rest.
	if err := session.Abort(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("session aborted: chapter 3 and the appendix are rolled back,")
	fmt.Println("but the split-off chapters survive:")

	for name, obj := range map[string]ariesrh.ObjectID{
		"chapter1": chapter1, "chapter2": chapter2, "chapter3": chapter3, "appendix": appendix,
	} {
		v, ok, err := db.ReadCommitted(obj)
		if err != nil {
			log.Fatal(err)
		}
		if !ok || len(v) == 0 {
			fmt.Printf("  %s: (gone)\n", name)
		} else {
			fmt.Printf("  %s: %s\n", name, v)
		}
	}
}
