// Command metering demonstrates commutative counters with delegation: a
// fleet of worker transactions meter usage into shared counters
// concurrently (increment locks don't block each other), periodically
// delegating their meters to a billing transaction that commits them.
// A worker crashing mid-batch loses only its unbilled deltas.
//
// Run with: go run ./examples/metering
package main

import (
	"fmt"
	"log"
	"sync"

	"ariesrh"
)

const (
	meterRequests = ariesrh.ObjectID(1)
	meterBytes    = ariesrh.ObjectID(2)
)

func main() {
	db, err := ariesrh.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Phase 1: three workers meter usage concurrently — increments on
	// the same counters do not block each other.
	var wg sync.WaitGroup
	workers := make([]*ariesrh.Tx, 3)
	for w := range workers {
		tx, err := db.Begin()
		if err != nil {
			log.Fatal(err)
		}
		workers[w] = tx
		wg.Add(1)
		go func(w int, tx *ariesrh.Tx) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := tx.Increment(meterRequests, 1); err != nil {
					log.Fatal(err)
				}
				if _, err := tx.Increment(meterBytes, int64(512+w)); err != nil {
					log.Fatal(err)
				}
			}
		}(w, tx)
	}
	wg.Wait()
	fmt.Println("3 workers metered 100 requests each, concurrently")

	// Phase 2: workers 0 and 1 hand their meters to billing, which
	// commits them; worker 2 keeps metering.
	billing, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	for _, tx := range workers[:2] {
		if err := tx.DelegateAll(billing); err != nil {
			log.Fatal(err)
		}
	}
	if err := billing.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("workers 0-1 billed (their deltas are now permanent)")

	// Phase 3: crash.  Worker 2's unbilled deltas vanish; the billed
	// ones survive.
	if err := db.Crash(); err != nil {
		log.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		log.Fatal(err)
	}
	reqs, err := db.CounterValue(meterRequests)
	if err != nil {
		log.Fatal(err)
	}
	bytesV, err := db.CounterValue(meterBytes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash + recovery: requests=%d (expected 200), bytes=%d (expected %d)\n",
		reqs, bytesV, 100*512+100*513)
	if reqs != 200 {
		log.Fatalf("unexpected requests counter %d", reqs)
	}
}
