// Command trip runs the paper's §2.2.2 nested-transaction example: a trip
// consisting of an airline reservation and a hotel reservation, each a
// subtransaction.  If the hotel reservation fails, the whole trip is
// canceled — including the airline reservation that had already
// "committed" at the subtransaction level, because a subtransaction commit
// only delegates its changes to the parent.
//
// Run with: go run ./examples/trip [-hotel-full]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"

	"ariesrh"
	"ariesrh/etm"
)

const (
	objFlight = ariesrh.ObjectID(1)
	objHotel  = ariesrh.ObjectID(2)
)

func main() {
	hotelFull := flag.Bool("hotel-full", false, "make the hotel reservation fail")
	flag.Parse()

	db, err := ariesrh.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	trip, err := etm.BeginNested(db)
	if err != nil {
		log.Fatal(err)
	}

	// trans { airline_res(); }
	if err := trip.Sub(func(res *etm.NestedTx) error {
		fmt.Println("airline: reserving seat 12A on UA-0042")
		return res.Update(objFlight, []byte("UA-0042 seat 12A"))
	}); err != nil {
		log.Fatalf("airline reservation failed: %v — trip canceled", err)
	}

	// trans { hotel_res(); }
	err = trip.Sub(func(res *etm.NestedTx) error {
		if *hotelFull {
			return errors.New("no rooms available")
		}
		fmt.Println("hotel: reserving room 17")
		return res.Update(objHotel, []byte("room 17, 2 nights"))
	})
	if err != nil {
		fmt.Printf("hotel reservation failed: %v\n", err)
		fmt.Println("canceling the trip — the airline reservation must not survive")
		if err := trip.Abort(); err != nil {
			log.Fatal(err)
		}
	} else {
		if err := trip.Commit(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("trip booked")
	}

	show(db, "flight", objFlight)
	show(db, "hotel ", objHotel)
}

func show(db *ariesrh.DB, name string, obj ariesrh.ObjectID) {
	v, ok, err := db.ReadCommitted(obj)
	if err != nil {
		log.Fatal(err)
	}
	if !ok || len(v) == 0 {
		fmt.Printf("%s: (no reservation)\n", name)
		return
	}
	fmt.Printf("%s: %s\n", name, v)
}
