// Command reporting demonstrates reporting transactions: a long-running
// computation that periodically publishes its progress via delegation, so
// the published milestones survive even a crash that kills the computation
// itself.  This is the paper's "control of recovery" motivation in action:
// delegation decouples the fate of an update from the fate of the
// transaction that made it.
//
// Run with: go run ./examples/reporting
package main

import (
	"fmt"
	"log"

	"ariesrh"
	"ariesrh/etm"
)

func main() {
	db, err := ariesrh.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A long-running aggregation job writes one result object per batch
	// and reports every 3 batches.
	job, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	reporter := etm.NewReporter(job, 3)
	for batch := 1; batch <= 10; batch++ {
		obj := ariesrh.ObjectID(batch)
		val := fmt.Sprintf("batch-%d: 42 rows", batch)
		if err := reporter.Update(obj, []byte(val)); err != nil {
			log.Fatal(err)
		}
		if batch%3 == 0 {
			fmt.Printf("reported through batch %d\n", batch)
		}
	}

	// Batches 1-9 were reported (three flushes); batch 10 is pending
	// when the system crashes.
	fmt.Println("CRASH while batch 10 is still unreported...")
	if err := db.Crash(); err != nil {
		log.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		log.Fatal(err)
	}

	survived, lost := 0, 0
	for batch := 1; batch <= 10; batch++ {
		v, ok, err := db.ReadCommitted(ariesrh.ObjectID(batch))
		if err != nil {
			log.Fatal(err)
		}
		if ok && len(v) > 0 {
			survived++
			fmt.Printf("  batch %2d: %s\n", batch, v)
		} else {
			lost++
			fmt.Printf("  batch %2d: (lost with the job)\n", batch)
		}
	}
	fmt.Printf("%d reported batches survived the crash; %d unreported batch lost\n", survived, lost)
}
