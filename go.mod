module ariesrh

go 1.22
