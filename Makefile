# Development targets for the ARIES/RH reproduction.
#
#   make check     vet + build + full test suite + short race pass
#   make race      race-detector run of the concurrency-sensitive packages
#   make bench-e8  regenerate BENCH_E8.json (quick sizes)

GO ?= go

.PHONY: check vet build test race bench bench-e8

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages whose hot paths drop and re-take latches: the core engine
# (group commit, DelegateAll), the WAL (leader flusher), and the sim
# stress tests that drive them concurrently.
race:
	$(GO) test -race -short ./internal/core ./internal/wal ./internal/sim

bench:
	$(GO) test -bench . -benchtime 0.5s .

bench-e8:
	$(GO) run ./cmd/rhbench -exp e8 -quick -json BENCH_E8.json
