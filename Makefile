# Development targets for the ARIES/RH reproduction.
#
#   make check     vet + build + full test suite + short race pass
#   make ci        what .github/workflows/ci.yml runs (check + short fuzz)
#   make race      race-detector run of the concurrency-sensitive packages
#   make torture   fixed-seed fault-injection crash sweep (nightly CI job)
#   make standby-demo  end-to-end log-shipping failover over TCP
#   make bench-e8  regenerate BENCH_E8.json (quick sizes)
#   make bench-e11 regenerate BENCH_E11.json (quick sizes)
#   make bench-e12 regenerate BENCH_E12.json (quick sizes)
#   make bench-e13 regenerate BENCH_E13.json (quick sizes)
#   make bench-e14 regenerate BENCH_E14.json (quick sizes)
#   make bench-e15 regenerate BENCH_E15.json (quick sizes)

GO ?= go

.PHONY: check ci vet staticcheck build test race fuzz-short torture standby-demo bench bench-e8 bench-e11 bench-e12 bench-e13 bench-e14 bench-e15

check: vet build test race

# Mirror of the CI pipeline: full race (not -short) on the latch-heavy
# packages plus a short fuzz pass over both wire-format decoders.
ci: vet staticcheck build test
	$(GO) test -race ./internal/core ./internal/wal ./internal/repl ./internal/shard
	$(GO) test -race -short -run 'TestReadsDuringRecovery|TestShardSweep' ./internal/torture
	$(MAKE) fuzz-short

# staticcheck is optional tooling: CI installs it, dev environments may
# only have the go toolchain — skip (loudly) where it isn't on PATH
# rather than failing the whole pipeline.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

fuzz-short:
	$(GO) test ./internal/wal -run '^$$' -fuzz FuzzDecodeRecord -fuzztime 30s
	$(GO) test ./internal/wal -run '^$$' -fuzz FuzzDecodePrepare -fuzztime 15s
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzDecodeCheckpoint -fuzztime 30s

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages whose hot paths drop and re-take latches: the core engine
# (group commit, DelegateAll), the WAL (leader flusher and tail
# subscriptions), the replication stream, and the sim stress tests that
# drive them concurrently.
race:
	$(GO) test -race -short ./internal/core ./internal/wal ./internal/repl ./internal/sim ./internal/shard ./internal/torture

# Full fault-injection pass under the race detector: the complete crash
# sweep at fixed seeds (no -short boundary cap), the replication
# promote-under-crash sweep (crash the primary at every sync boundary,
# promote a live replica, judge against the durable-log oracle), the
# early-lock-release sweep (crash a contended concurrent workload
# between lock release and commit-record flush at every boundary), the
# scope audit, and the transient/persistent fault paths.  Budgeted for
# the nightly CI job; a laptop run takes on the order of a minute.
torture:
	$(GO) test -race -count=1 -timeout 20m ./internal/torture ./internal/fault

# The README quickstart, executed: bootstrap backup, stream over TCP,
# crash the primary, promote the standby, verify.
standby-demo:
	$(GO) run ./cmd/rhstandby -demo

bench:
	$(GO) test -bench . -benchtime 0.5s .

bench-e8:
	$(GO) run ./cmd/rhbench -exp e8 -quick -json BENCH_E8.json

bench-e11:
	$(GO) run ./cmd/rhbench -exp e11 -quick -json BENCH_E11.json

bench-e12:
	$(GO) run ./cmd/rhbench -exp e12 -quick -json BENCH_E12.json

bench-e13:
	$(GO) run ./cmd/rhbench -exp e13 -quick -json BENCH_E13.json

bench-e14:
	$(GO) run ./cmd/rhbench -exp e14 -quick -json BENCH_E14.json

bench-e15:
	$(GO) run ./cmd/rhbench -exp e15 -quick -json BENCH_E15.json
