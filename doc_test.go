package ariesrh

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestDocComments is the doc-comment lint that rides the test suite (and
// with it `make ci`): every exported symbol of the public API and of the
// packages that carry crash-safety contracts must state that contract in
// a doc comment.  An exported symbol without one is a build break, not a
// style nit — the durability semantics of this library live in those
// comments.
func TestDocComments(t *testing.T) {
	dirs := []string{".", "internal/wal", "internal/fault", "internal/torture", "internal/shard"}
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for path, file := range pkg.Files {
				for _, decl := range file.Decls {
					checkDecl(t, fset, path, decl)
				}
			}
		}
	}
}

func checkDecl(t *testing.T, fset *token.FileSet, path string, decl ast.Decl) {
	t.Helper()
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		t.Errorf("%s:%d: exported %s has no doc comment", path, p.Line, what)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return
		}
		// Methods on unexported receiver types are not part of the API.
		if d.Recv != nil && !exportedReceiver(d.Recv) {
			return
		}
		if d.Doc == nil {
			report(d.Pos(), "function "+d.Name.Name)
		}
	case *ast.GenDecl:
		if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
			return
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
					report(s.Pos(), "type "+s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if name.IsExported() && s.Doc == nil && s.Comment == nil && d.Doc == nil {
						report(name.Pos(), "declaration "+name.Name)
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver names an exported
// type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
