package ariesrh

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestBackupRestore(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	committed, _ := db.Begin()
	if err := committed.Update(1, []byte("committed-before-backup")); err != nil {
		t.Fatal(err)
	}
	if err := committed.Commit(); err != nil {
		t.Fatal(err)
	}
	inflight, _ := db.Begin()
	if err := inflight.Update(2, []byte("in-flight-at-backup")); err != nil {
		t.Fatal(err)
	}

	backupDir := filepath.Join(t.TempDir(), "backup")
	if err := db.Backup(backupDir); err != nil {
		t.Fatal(err)
	}

	// Life goes on in the original after the backup.
	if err := inflight.Commit(); err != nil {
		t.Fatal(err)
	}
	later, _ := db.Begin()
	if err := later.Update(3, []byte("after-backup")); err != nil {
		t.Fatal(err)
	}
	if err := later.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Restoring = opening the backup directory; recovery rolls back
	// whatever was in flight at backup time.
	restored, err := Open(Options{Dir: backupDir})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	v, ok, err := restored.ReadCommitted(1)
	if err != nil || !ok || !bytes.Equal(v, []byte("committed-before-backup")) {
		t.Fatalf("obj1 = %q ok=%v err=%v", v, ok, err)
	}
	if _, ok, _ := restored.ReadCommitted(2); ok {
		t.Fatal("in-flight-at-backup transaction survived in the backup")
	}
	if _, ok, _ := restored.ReadCommitted(3); ok {
		t.Fatal("post-backup write leaked into the backup")
	}
	// The original, reopened, has everything.
	orig, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	for obj, want := range map[ObjectID]string{
		1: "committed-before-backup", 2: "in-flight-at-backup", 3: "after-backup",
	} {
		v, ok, err := orig.ReadCommitted(obj)
		if err != nil || !ok || string(v) != want {
			t.Fatalf("original obj%d = %q ok=%v err=%v", obj, v, ok, err)
		}
	}
}

func TestBackupRequiresFileBacked(t *testing.T) {
	db, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	err = db.Backup(t.TempDir())
	if err == nil {
		t.Fatal("backup of in-memory database accepted")
	}
	// The error must say what is wrong, not fail on a missing file path.
	if got, want := err.Error(), "ariesrh: backup requires a file-backed database"; got != want {
		t.Fatalf("error = %q, want %q", got, want)
	}
}

func TestBackupRejectedWhileCrashed(t *testing.T) {
	// Between Crash and Recover the stable image may have a torn log tail
	// and pages ahead of what a consistent snapshot needs: Backup must
	// refuse rather than copy it.
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tx, _ := db.Begin()
	if err := tx.Update(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	backupDir := filepath.Join(t.TempDir(), "torn")
	if err := db.Backup(backupDir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Backup between Crash and Recover = %v, want ErrCrashed", err)
	}
	if _, err := os.Stat(filepath.Join(backupDir, "wal.log")); !os.IsNotExist(err) {
		t.Fatalf("rejected backup still copied files: %v", err)
	}
	// After Recover, backup works again.
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := db.Backup(backupDir); err != nil {
		t.Fatalf("Backup after Recover = %v", err)
	}
}

func TestBackupWithDelegationInFlight(t *testing.T) {
	// A delegated-to-winner update committed before the backup survives
	// restore even though its invoker was in flight at backup time.
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	invoker, _ := db.Begin()
	keeper, _ := db.Begin()
	if err := invoker.Update(1, []byte("delegated")); err != nil {
		t.Fatal(err)
	}
	if err := invoker.Delegate(keeper, 1); err != nil {
		t.Fatal(err)
	}
	if err := keeper.Commit(); err != nil {
		t.Fatal(err)
	}
	backupDir := filepath.Join(t.TempDir(), "b")
	if err := db.Backup(backupDir); err != nil {
		t.Fatal(err)
	}
	db.Close()
	restored, err := Open(Options{Dir: backupDir})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	v, ok, _ := restored.ReadCommitted(1)
	if !ok || string(v) != "delegated" {
		t.Fatalf("delegated update lost in backup: %q ok=%v", v, ok)
	}
}

// TestSyncDirCopyDetectsSameSizeContentChange pins the incremental-copy
// skip to content verification: a source file whose bytes changed at
// unchanged size (torn-tail recovery re-appending a truncated segment,
// or a naïve baseline's in-place Rewrite) must be re-shipped — a
// name+size comparison alone would silently keep the stale copy.
func TestSyncDirCopyDetectsSameSizeContentChange(t *testing.T) {
	src := t.TempDir()
	dst := t.TempDir()
	name := "seg-0000000000000001"
	if err := os.WriteFile(filepath.Join(src, name), []byte("old-bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := syncDirCopy(src, dst); err != nil {
		t.Fatal(err)
	}
	// Same size, different content.
	if err := os.WriteFile(filepath.Join(src, name), []byte("new-bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := syncDirCopy(src, dst); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dst, name))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("new-bytes")) {
		t.Fatalf("destination holds %q after re-sync, want %q", got, "new-bytes")
	}
}
